// On-demand network mapper (§4.2): the paper's second contribution.
//
// Instead of computing full network maps and deadlock-free UP*/DOWN* routes,
// each NIC lazily BFS-probes the fabric only when it needs a route — at first
// contact with a node, or after the reliability protocol declares a path
// permanently failed. The discovered routes are shortest paths and are *not*
// deadlock-free; deadlock recovery is the retransmission protocol's job.
//
// Probe vocabulary (Table 3's two columns):
//  * host probe   — a kProbeHost packet source-routed down a candidate path;
//    if a host sits at its end, that host's mapper replies along the reverse
//    route. No reply within probe_timeout => no host there.
//  * switch probe — a loop-back (bounce) kProbeSwitch packet: route
//    prefix + [port-under-test, guessed-return-port] + known-way-home. It
//    returns to the prober iff a crossbar sits behind the port and the guess
//    hit the port the packet entered through. Myrinet switches have no
//    identity, so discovering one costs up to radix guesses.
//
// The BFS explores level-by-level and *stops as soon as the destination
// answers*, which is why mapping a same-switch neighbor needs host probes
// only (Table 3, row 1). Probes bypass the send-buffer pool and the
// reliability channels entirely (they are firmware-internal traffic).
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "firmware/mapper.hpp"
#include "net/topology.hpp"
#include "nic/nic.hpp"
#include "sim/awaitables.hpp"
#include "sim/process.hpp"
#include "sim/task.hpp"

namespace sanfault::firmware {

struct OnDemandMapperConfig {
  /// How long to wait for a probe reply before concluding "nothing there".
  sim::Duration probe_timeout = sim::microseconds(300);
  /// Extra attempts per probe (probes themselves can be lost to faults).
  int probe_retries = 1;
  /// Upper bound on crossbar radix: ports 0..max_ports-1 are candidates
  /// when the radix of a discovered switch is unknown.
  std::uint8_t max_ports = 16;
  /// Optional "the operator knows the switch models" knowledge: when set,
  /// the mapper reads the actual radix of a discovered crossbar from the
  /// topology instead of probing max_ports ports on every switch. This is
  /// how deployed Myrinet mappers behaved (switch types were configured);
  /// emptiness of in-radix ports is still discovered by probing.
  const net::Topology* radix_oracle = nullptr;
  /// BFS depth bound (switches traversed). Redundant fabrics make switches
  /// re-discoverable through parallel paths — switches have no identity — so
  /// the search must be bounded to terminate on cyclic topologies.
  std::size_t max_depth = 6;
  /// Hard cap on probes per mapping (runaway guard on unreachable targets;
  /// exhausting it fails the mapping and bumps probe_budget_exhausted).
  std::size_t max_probes = 4096;
  /// Also cache hosts discovered *in passing* while mapping some other
  /// destination (the requested destination is always cached while
  /// path_cache_capacity > 0). Entries live in an LRU path cache; the
  /// reliability layer invalidates a destination's entry on path failure
  /// (MapperIface::on_path_failure), so later requests for an unaffected
  /// destination are served without probing.
  bool cache_discovered_hosts = true;
  /// Capacity of the per-destination path cache (0 disables caching; large
  /// fabrics at default capacity never evict — evictions show up in
  /// mapper.path_cache_evictions when they do).
  std::size_t path_cache_capacity = 1024;
  /// Deterministic multipath: instead of returning the first shortest route
  /// the BFS finds, finish probing the destination's BFS level, collect the
  /// equal-cost routes, and pick one with an Rng seeded from
  /// (multipath_salt, self, dst) — stable across runs and across --jobs
  /// orderings. Off by default (Table 3's probe counts assume first-answer
  /// termination).
  bool multipath = false;
  std::uint64_t multipath_salt = 0x5ca1ab1e;
  /// Operator-configured fabric database: resolve duplicate-detection
  /// verdicts from the radix_oracle *without* emitting the comparison probes.
  /// Dup probes dominate BFS traffic on large fabrics (§4.2's
  /// "distinguishing new switches from old ones" grows with the number of
  /// known switches), so configured deployments shortcut them. Off by
  /// default: Table 3's methodology counts that traffic. Requires
  /// radix_oracle; ignored without it.
  bool configured_identity = false;
  /// Proactive alternate paths (docs/ROUTING.md): whenever the requested
  /// destination's primary route is installed in the path cache, precompute a
  /// maximally link/node-disjoint backup (net::Topology::disjoint_route,
  /// seeded from multipath_salt ^ (self, dst) so the pick is deterministic
  /// and spread across sources) and store it in the entry's backup slot. A
  /// later on_path_failure then *promotes* the backup in one step — no probe
  /// storm on the critical path — after an up-state validation against the
  /// radix_oracle topology (a backup sharing the dead element is rejected
  /// and the mapping falls back to probing). The emptied backup slot is
  /// replenished lazily in the background, verified by a single host probe.
  /// Requires radix_oracle (same operator-knowledge assumption as
  /// configured_identity); ignored without it.
  bool proactive_backup = false;
};

struct OnDemandMapperStats {
  std::uint64_t mappings_started = 0;
  std::uint64_t mappings_succeeded = 0;
  std::uint64_t mappings_failed = 0;
  std::uint64_t host_probes_tx = 0;
  std::uint64_t switch_probes_tx = 0;
  std::uint64_t probe_replies_tx = 0;   // this NIC answering others' probes
  std::uint64_t probe_replies_rx = 0;
  std::uint64_t probe_timeouts = 0;
  /// Total simulated time spent inside mapping runs.
  sim::Duration mapping_time_total = 0;
  /// Duration and probe counts of the most recent completed mapping.
  sim::Duration last_mapping_time = 0;
  std::uint64_t last_host_probes = 0;
  std::uint64_t last_switch_probes = 0;
  /// Path-cache behavior (docs/OBSERVABILITY.md `mapper.*` scale metrics).
  std::uint64_t path_cache_hits = 0;
  std::uint64_t path_cache_evictions = 0;
  std::uint64_t path_cache_invalidations = 0;
  /// Mappings aborted because max_probes ran out.
  std::uint64_t probe_budget_exhausted = 0;
  /// Equal-cost candidate routes considered by multipath selection (summed).
  std::uint64_t multipath_candidates = 0;
  /// Proactive backup paths (docs/ROUTING.md, `mapper.backup_*` metrics).
  std::uint64_t backup_computed = 0;      // backup slots filled (any source)
  std::uint64_t backup_promotions = 0;    // failures served by promote, 0 probes
  std::uint64_t backup_stale_rejections = 0;  // backup dead at promote time
  std::uint64_t backup_replenish_probes = 0;  // verification probes, replenish
  /// Disjointness achieved by computed backups, by class.
  std::uint64_t backup_node_disjoint = 0;
  std::uint64_t backup_link_disjoint = 0;
  std::uint64_t backup_overlapping = 0;
};

class OnDemandMapper final : public MapperIface {
 public:
  OnDemandMapper(nic::Nic& nic, OnDemandMapperConfig cfg = {});
  ~OnDemandMapper() override;

  // --- MapperIface ---------------------------------------------------------
  void request_route(net::HostId dst, RouteCallback cb) override;
  void on_probe_packet(net::Packet pkt) override;
  /// Idempotent: invalidates the cached path once, no matter how many
  /// reporters converge on the same dead destination (the local no-progress
  /// detector and a membership exclusion often race). If a mapping for `dst`
  /// is in flight, its eventual result is also kept out of the cache — the
  /// discovery raced the failure, so the route it found may already be dead.
  /// With proactive_backup on, a cached entry carrying a live backup is
  /// promoted instead of erased (returns true): the next request_route is a
  /// cache hit on the promoted route, and a background replenish refills the
  /// backup slot. A stale backup (dead per trace_route_up) is rejected and
  /// the whole entry dropped — never deliver over a wrong route.
  bool on_path_failure(net::HostId dst) override;
  void on_peer_dead(net::HostId dst) override;
  void on_nic_reset() override { flush_cache(); }

  [[nodiscard]] const OnDemandMapperStats& stats() const { return stats_; }

  /// Drop the cached route to one destination (its path just failed); the
  /// next request for it re-probes while other cached paths stay warm.
  void invalidate_path(net::HostId dst);

  /// Drop all cached discovery state (e.g. the operator knows the fabric
  /// changed wholesale).
  void flush_cache();

  /// Preinstall a known-good route (an operator-configured static map) into
  /// the path cache, computing its proactive backup when enabled. Rigs that
  /// preload full route tables use this so the *first* failure can promote
  /// instead of paying a cold probe storm.
  void seed_cache(net::HostId dst, const net::Route& r);

  /// Test introspection: non-touching peek at the cached primary / backup.
  [[nodiscard]] const net::Route* cached_route(net::HostId dst) const {
    return path_cache_.peek(dst);
  }
  [[nodiscard]] const std::optional<net::AltRoute>* cached_backup(
      net::HostId dst) const {
    return path_cache_.peek_backup(dst);
  }

  // --- chaos mutation API (src/chaos/corruptor.hpp) ------------------------
  // The only sanctioned outside-mutation path into the mapper's SRAM state
  // (docs/CHAOS.md "State corruption"): mutable access to *existing* cache
  // entries, never creating any. Recency order is untouched. Every mutation
  // made through these is logged in the chaos event log by the corruptor.
  /// Cached destinations in deterministic recency order (MRU first).
  [[nodiscard]] std::vector<net::HostId> chaos_cached_hosts() const {
    return path_cache_.hosts();
  }
  [[nodiscard]] net::Route* chaos_cached_route(net::HostId dst) {
    return path_cache_.primary_mut(dst);
  }
  [[nodiscard]] std::optional<net::AltRoute>* chaos_cached_backup(
      net::HostId dst) {
    return path_cache_.backup_mut(dst);
  }

 private:
  /// A discovered crossbar: how to reach it and how its packets reach us.
  struct KnownSwitch {
    net::Route forward;                  // bytes from us to (into) the switch
    std::vector<std::uint8_t> reverse;   // bytes from the switch back to us
    std::uint8_t entry_port = 0;         // port we enter it through
    std::uint8_t radix = 16;             // ports to probe on it
    /// Equal-length alternative forwards (multipath only; capped).
    std::vector<net::Route> alt_forwards;
  };

  /// LRU map destination -> discovered route, plus an optional precomputed
  /// backup route per entry (proactive_backup). Both slots share one entry:
  /// eviction, invalidation and flush drop them together. Deterministic:
  /// ordering is the explicit recency list, never unordered_map iteration.
  class PathCache {
   public:
    explicit PathCache(std::size_t cap) : cap_(cap) {}
    /// Touches the entry (most-recently-used) and returns it, or nullptr.
    const net::Route* get(net::HostId h);
    /// Installs/overwrites the primary; a changed primary drops the backup
    /// (it was computed to be disjoint from the old one).
    void put(net::HostId h, net::Route r, std::uint64_t* evictions);
    bool erase(net::HostId h);
    [[nodiscard]] bool contains(net::HostId h) const {
      return idx_.contains(h);
    }
    void clear();

    /// Backup slot of an existing entry (no-ops / nullptr when h is absent).
    void set_backup(net::HostId h, net::AltRoute alt);
    [[nodiscard]] const std::optional<net::AltRoute>* backup(net::HostId h) const;
    /// Backup -> primary in place; the backup slot empties. False if absent.
    bool promote(net::HostId h);

    /// Non-touching lookups (test introspection; recency order unchanged).
    [[nodiscard]] const net::Route* peek(net::HostId h) const;
    [[nodiscard]] const std::optional<net::AltRoute>* peek_backup(
        net::HostId h) const;

    /// Chaos mutation API: cached hosts in recency order (MRU first), and
    /// non-touching *mutable* slot access (nullptr when absent).
    [[nodiscard]] std::vector<net::HostId> hosts() const;
    [[nodiscard]] net::Route* primary_mut(net::HostId h);
    [[nodiscard]] std::optional<net::AltRoute>* backup_mut(net::HostId h);

   private:
    struct Entry {
      net::HostId host;
      net::Route primary;
      std::optional<net::AltRoute> backup;
    };
    std::size_t cap_;
    std::list<Entry> lru_;  // front = most recently used
    std::unordered_map<net::HostId, std::list<Entry>::iterator> idx_;
  };

  /// Radix of the crossbar at the end of `forward` (oracle or max_ports).
  [[nodiscard]] std::uint8_t radix_of(const net::Route& forward) const;

  struct PendingRequest {
    net::HostId dst;
    std::vector<RouteCallback> cbs;
  };

  /// One probe in flight; replies are matched by nonce.
  struct ProbeWait {
    std::uint64_t nonce = 0;
    bool replied = false;
    net::HostId replier;
    sim::Trigger done;
  };

  /// Drains the request queue, one BFS at a time (FIFO).
  sim::Process drive();

  /// Core BFS for one destination; counts probes against the budget.
  sim::Task<std::optional<net::Route>> bfs(net::HostId dst,
                                           std::uint64_t* probes_used);

  /// Send one probe and await reply-or-timeout (with retries). Returns true
  /// on reply; for host probes *replier is set to the answering host.
  sim::Task<bool> probe_and_wait_impl(net::PacketType type, net::Route route,
                                      net::HostId* replier);

  void inject_probe(net::Packet pkt);

  // --- proactive backup paths (cfg_.proactive_backup) ----------------------
  /// Salt for disjoint_route tie-breaking: multipath machinery, distinct
  /// stream (backups must not mirror the primary multipath picks).
  [[nodiscard]] std::uint64_t backup_salt(net::HostId dst) const;
  /// Compute + install the backup slot for a just-installed primary.
  void fill_backup(net::HostId dst);
  /// Validate (trace_route_up) + promote the backup; true on success.
  bool promote_backup(net::HostId dst);
  /// Background: recompute a backup disjoint from the *new* primary, verify
  /// it with one host probe, install it if the entry is still unchanged.
  sim::Process replenish_backup(net::HostId dst, net::Route primary);

  nic::Nic& nic_;
  OnDemandMapperConfig cfg_;
  OnDemandMapperStats stats_;

  std::deque<PendingRequest> queue_;
  bool mapping_active_ = false;
  /// Destination of the BFS currently in flight (for request merging).
  std::optional<net::HostId> active_dst_;
  std::vector<RouteCallback>* active_cbs_ = nullptr;
  /// Set when on_path_failure hits the in-flight destination: the result of
  /// the current BFS must not be cached (it may be the failed path).
  bool active_invalidated_ = false;
  /// Set alongside active_invalidated_ when that failure was served by a
  /// backup promotion: the in-flight BFS result is still discarded, but the
  /// promoted cache entry survives and answers the waiting callbacks (no
  /// double-cache — the probe raced the promote and lost).
  bool active_promoted_ = false;
  /// Destinations with a replenish probe in flight (suppress duplicates).
  std::unordered_map<net::HostId, bool> replenishing_;

  /// Nonce -> in-flight probe bookkeeping.
  std::unordered_map<std::uint64_t, ProbeWait*> inflight_;
  std::uint64_t next_nonce_ = 1;

  /// Cached: port of our first-hop switch we attach to (rediscovered when a
  /// mapping that relied on it fails at level 0).
  std::optional<std::uint8_t> attach_port_;
  /// Hosts discovered during any mapping (LRU; see path_cache_capacity).
  PathCache path_cache_;
};

}  // namespace sanfault::firmware
