// Per-NIC source-route table: destination host -> route.
//
// With static mapping the table is preloaded (populate_all) the way the
// Myrinet mapper distributes full routes. With on-demand mapping (§4.2) the
// table starts empty or partial and entries are added/invalidated as the
// mapper discovers and loses paths.
#pragma once

#include <optional>
#include <unordered_map>

#include "net/ids.hpp"
#include "net/route.hpp"
#include "net/topology.hpp"

namespace sanfault::firmware {

class RouteTable {
 public:
  void set(net::HostId dst, net::Route route) {
    routes_[dst] = std::move(route);
  }

  [[nodiscard]] std::optional<net::Route> get(net::HostId dst) const {
    auto it = routes_.find(dst);
    if (it == routes_.end()) return std::nullopt;
    return it->second;
  }

  void invalidate(net::HostId dst) { routes_.erase(dst); }

  /// Drop every route (a NIC reset loses the volatile route cache).
  void clear() { routes_.clear(); }

  [[nodiscard]] bool contains(net::HostId dst) const {
    return routes_.contains(dst);
  }

  [[nodiscard]] std::size_t size() const { return routes_.size(); }

  /// Preload shortest routes from `self` to every other host (the full-map
  /// baseline). Unreachable hosts are skipped.
  void populate_all(const net::Topology& topo, net::HostId self) {
    for (std::uint32_t h = 0; h < topo.num_hosts(); ++h) {
      const net::HostId dst{h};
      if (dst == self) continue;
      if (auto r = topo.shortest_route(self, dst)) set(dst, std::move(*r));
    }
  }

 private:
  std::unordered_map<net::HostId, net::Route> routes_;
};

}  // namespace sanfault::firmware
