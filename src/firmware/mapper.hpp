// Interface between the reliability firmware and a mapping scheme.
//
// The reliability protocol does not care how routes are found — it reports
// paths it has given up on and asks for a (new) route; probe-type wire
// packets are forwarded here untouched.
#pragma once

#include <functional>
#include <optional>

#include "net/ids.hpp"
#include "net/packet.hpp"
#include "net/route.hpp"

namespace sanfault::firmware {

class MapperIface {
 public:
  virtual ~MapperIface() = default;

  using RouteCallback = std::function<void(std::optional<net::Route>)>;

  /// Discover a route to `dst`, invoking `cb` exactly once when the search
  /// concludes (nullopt: no path exists / gave up).
  virtual void request_route(net::HostId dst, RouteCallback cb) = 0;

  /// Probe-type packets received from the wire are handed here.
  virtual void on_probe_packet(net::Packet pkt) = 0;

  /// The reliability protocol declared the path to `dst` permanently failed.
  /// Mappers that cache discovered routes must invalidate that entry before
  /// the request_route that follows, or they would re-serve the dead path.
  /// Returns true when the mapper promoted a precomputed backup route in
  /// place of the dead primary (proactive alternate paths): the request_route
  /// that follows is then served from cache in one step, no probing.
  virtual bool on_path_failure(net::HostId /*dst*/) { return false; }

  /// Cluster membership confirmed `dst` itself dead (not just the path).
  /// Unlike on_path_failure there is nothing to fail over to — a backup
  /// route to a corpse is as useless as the primary — so mappers drop every
  /// cached slot for the destination unconditionally.
  virtual void on_peer_dead(net::HostId /*dst*/) {}

  /// The NIC firmware restarted (chaos nic_reset): volatile discovery state
  /// (caches, attach-port knowledge) is gone.
  virtual void on_nic_reset() {}
};

}  // namespace sanfault::firmware
