#include "firmware/mapper_full.hpp"

namespace sanfault::firmware {

FullMapper::FullMapper(nic::Nic& nic, const net::Topology& topo,
                       FullMapperConfig cfg)
    : nic_(nic), topo_(&topo), cfg_(cfg) {}

std::uint64_t FullMapper::probes_for_full_map() const {
  // BFS over the whole fabric: every switch port is host-probed once and, if
  // silent, bounce-probed to detect a neighboring crossbar; every host
  // answers one probe. Two probes per switch port is the classical budget.
  std::uint64_t ports = 0;
  for (std::uint32_t s = 0; s < topo_->num_switches(); ++s) {
    if (topo_->switch_up(net::SwitchId{s})) {
      ports += topo_->switch_ports(net::SwitchId{s});
    }
  }
  return 2 * ports + topo_->num_hosts();
}

void FullMapper::request_route(net::HostId dst, RouteCallback cb) {
  // A request only arrives when something failed: remap the world.
  waiting_.emplace_back(dst, std::move(cb));
  if (!remap_running_) start_remap();
}

void FullMapper::start_remap() {
  remap_running_ = true;
  ++stats_.full_maps;
  const std::uint64_t probes = probes_for_full_map();
  stats_.modeled_probes += probes;
  const std::uint64_t pairs = topo_->num_hosts() * (topo_->num_hosts() - 1);
  const sim::Duration cost =
      probes * cfg_.per_probe_time + pairs * cfg_.per_route_compute;
  stats_.last_map_time = cost;
  stats_.map_time_total += cost;
  nic_.sched().after(cost, [this] { finish_remap(); });
}

void FullMapper::finish_remap() {
  routing_ = std::make_unique<UpDownRouting>(*topo_);
  remap_running_ = false;
  auto waiting = std::move(waiting_);
  waiting_.clear();
  for (auto& [dst, cb] : waiting) {
    auto r = routing_->route(nic_.self(), dst);
    r ? ++stats_.routes_served : ++stats_.routes_unavailable;
    cb(std::move(r));
  }
  // Requests that raced in during the callbacks trigger a fresh remap.
  if (!waiting_.empty()) start_remap();
}

}  // namespace sanfault::firmware
