#include "firmware/reliability.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace sanfault::firmware {

using net::HostId;
using net::Packet;
using net::PacketType;

ReliableFirmware::ReliableFirmware(nic::Nic& nic, ReliabilityConfig cfg)
    : nic_(nic),
      cfg_(cfg),
      policy_(cfg.ack),
      next_drop_in_(cfg.drop_interval),
      drop_rng_(cfg.drop_seed ^ (nic.self().v * 0x9e3779b97f4a7c15ull)) {
  nic_.load_firmware(this);
  register_metrics();
  arm_timer();
}

ReliableFirmware::~ReliableFirmware() {
  if (auto* r = obs::Registry::find(nic_.sched())) r->remove_collectors(this);
}

void ReliableFirmware::register_metrics() {
  obs_ = &obs::Registry::of(nic_.sched());
  trace_ = &obs_->trace();
  const std::string node = "{node=" + std::to_string(nic_.self().v) + "}";
  queue_depth_ = &obs_->histogram("firmware.retrans_queue_depth" + node,
                                  "packets");
  remap_latency_ = &obs_->histogram("firmware.remap_latency_ns" + node, "ns");
  free_bufs_ = &obs_->gauge("firmware.send_buffers_free" + node, "buffers");
  // Counters mirror ReliabilityStats via a pull-collector: the protocol fast
  // path keeps its plain struct increments, the registry syncs before every
  // export (and one final time from the destructor).
  obs_->add_collector(this, [this, node] {
    obs::Registry& r = *obs_;
    const ReliabilityStats& s = stats_;
    r.counter("firmware.data_tx" + node, "packets").set(s.data_tx);
    r.counter("firmware.retransmissions" + node, "packets")
        .set(s.retransmissions);
    r.counter("firmware.retrans_rounds" + node, "rounds")
        .set(s.retrans_rounds);
    r.counter("firmware.injected_drops" + node, "packets")
        .set(s.injected_drops);
    r.counter("firmware.data_rx_in_order" + node, "packets")
        .set(s.data_rx_in_order);
    r.counter("firmware.dup_drops" + node, "packets").set(s.dup_drops);
    r.counter("firmware.ooo_drops" + node, "packets").set(s.ooo_drops);
    r.counter("firmware.stale_gen_drops" + node, "packets")
        .set(s.stale_gen_drops);
    r.counter("firmware.corrupt_drops" + node, "packets")
        .set(s.corrupt_drops);
    r.counter("firmware.acks_explicit_tx" + node, "packets")
        .set(s.acks_explicit_tx);
    r.counter("firmware.acks_rx" + node, "packets").set(s.acks_rx);
    r.counter("firmware.ack_advances" + node, "acks").set(s.ack_advances);
    r.counter("firmware.timer_fires" + node, "fires").set(s.timer_fires);
    r.counter("firmware.path_failures" + node, "paths").set(s.path_failures);
    r.counter("firmware.remap_requests" + node, "requests")
        .set(s.remap_requests);
    r.counter("firmware.generation_restarts" + node, "restarts")
        .set(s.generation_restarts);
    r.counter("firmware.unreachable_drops" + node, "packets")
        .set(s.unreachable_drops);
    r.counter("firmware.no_route_drops" + node, "packets")
        .set(s.no_route_drops);
    r.counter("firmware.nic_resets" + node, "resets").set(s.nic_resets);
    r.counter("firmware.peer_exclusions" + node, "peers")
        .set(s.peer_exclusions);
    r.counter("firmware.scrub_passes" + node, "passes").set(s.scrub_passes);
    r.counter("firmware.scrub_tx_repairs" + node, "repairs")
        .set(s.scrub_tx_repairs);
    r.counter("firmware.scrub_rx_repairs" + node, "repairs")
        .set(s.scrub_rx_repairs);
    r.counter("firmware.scrub_gen_adoptions" + node, "adoptions")
        .set(s.scrub_gen_adoptions);
    r.counter("firmware.scrub_bogus_acks" + node, "acks")
        .set(s.scrub_bogus_acks);
    r.counter("firmware.scrub_resets" + node, "resets").set(s.scrub_resets);
    r.counter("firmware.misroute_drops" + node, "packets")
        .set(s.misroute_drops);
    free_bufs_->set(static_cast<std::int64_t>(nic_.send_pool().free_count()));
  });
}

void ReliableFirmware::trace_ch(obs::TraceKind kind, HostId peer,
                                std::uint32_t seq, std::uint16_t gen,
                                std::uint32_t arg) {
  if (!trace_->enabled()) return;
  trace_->emit(obs::TraceEvent{nic_.sched().now(), nic_.self().v, peer.v, seq,
                               arg, gen,
                               static_cast<std::uint16_t>(nic_.self().v),
                               kind});
}

bool ReliableFirmware::should_drop_now() {
  if (cfg_.drop_interval == 0) return false;
  if (burst_left_ > 0) {
    --burst_left_;
    ++stats_.injected_drops;
    return true;
  }
  if (--next_drop_in_ > 0) return false;
  // Re-arm with +-25% jitter, at least +-1 (see
  // ReliabilityConfig::drop_interval — with zero jitter a tiny interval can
  // phase-lock with a same-sized go-back-N round and starve one packet).
  const std::uint64_t n = cfg_.drop_interval;
  const std::uint64_t jit = n >= 2 ? std::max<std::uint64_t>(1, n / 4) : 0;
  next_drop_in_ = n - jit + (jit != 0 ? drop_rng_.uniform(2 * jit + 1) : 0);
  if (next_drop_in_ == 0) next_drop_in_ = 1;
  if (cfg_.drop_burst > 1) burst_left_ = cfg_.drop_burst - 1;
  ++stats_.injected_drops;
  return true;
}

const TxChannel* ReliableFirmware::tx_channel(HostId h) const {
  auto it = tx_.find(h);
  return it == tx_.end() ? nullptr : &it->second;
}

const RxChannel* ReliableFirmware::rx_channel(HostId h) const {
  auto it = rx_.find(h);
  return it == rx_.end() ? nullptr : &it->second;
}

sim::Duration ReliableFirmware::tx_cpu_cost(const nic::SendRequest&) const {
  return nic_.costs().mcp_tx + nic_.costs().mcp_tx_reliable;
}

sim::Duration ReliableFirmware::rx_cpu_cost(const Packet& pkt) const {
  switch (pkt.hdr.type) {
    case PacketType::kAck:
      return nic_.costs().mcp_ack_process;
    case PacketType::kProbeHost:
    case PacketType::kProbeSwitch:
    case PacketType::kProbeReply:
      return nic_.costs().probe_process;
    default:
      return nic_.costs().mcp_rx + nic_.costs().mcp_rx_reliable;
  }
}

// ---------------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------------

void ReliableFirmware::on_host_packet(nic::SendRequest req) {
  const HostId dst = req.dst;
  TxChannel& ch = tx(dst);

  if (ch.unreachable) {
    if (mapper_ == nullptr) {
      ++stats_.unreachable_drops;
      nic_.release_send_buffers();
      return;
    }
    // A send to an unreachable node retries discovery: the node may have
    // been re-attached elsewhere (dynamic reconfiguration, §4.2).
    ch.unreachable = false;
  }

  // Build the packet. Sequence numbers are assigned here so retransmission
  // order equals submission order.
  Packet pkt;
  pkt.hdr.src = nic_.self();
  pkt.hdr.dst = dst;
  pkt.hdr.type = req.type;
  pkt.hdr.user = req.user;
  pkt.payload = std::move(req.payload);
  pkt.hdr.seq = ch.next_seq++;
  pkt.hdr.generation = ch.generation;

  // Piggy-back the cumulative ACK for the reverse direction on every data
  // packet (§4.1.2, first optimization).
  RxChannel& rxch = rx(dst);
  pkt.hdr.ack = rxch.expected_seq - 1;
  pkt.hdr.ack_gen = rxch.generation;
  pkt.hdr.flags |= net::kFlagPiggyAck;
  rxch.pending_unacked = 0;

  // Sender-based ACK-frequency feedback (§4.1.2, third optimization).
  if (policy_.should_request(nic_.send_pool().free_count(),
                             nic_.send_pool().capacity(),
                             ch.since_ack_request)) {
    pkt.hdr.flags |= net::kFlagAckRequest;
    ch.since_ack_request = 0;
  } else {
    ++ch.since_ack_request;
  }

  if (ch.retrans_queue.empty()) ch.last_progress = nic_.sched().now();

  // Self-stabilization guard (O(1), always on): the sequence counter must
  // continue the queue tail exactly. A corrupted next_seq caught here is
  // re-anchored before the new packet inherits the bogus number — a full
  // queue repair, if the queue itself is garbled, is the scrubber's job.
  if (!ch.retrans_queue.empty() &&
      pkt.hdr.seq != ch.retrans_queue.back().pkt.hdr.seq + 1) {
    ++stats_.scrub_tx_repairs;
    pkt.hdr.seq = ch.retrans_queue.back().pkt.hdr.seq + 1;
    ch.next_seq = pkt.hdr.seq + 1;
    publish(FwEvent{FwEvent::Kind::kScrubRepair, nic_.self(), dst,
                    ch.generation, false,
                    static_cast<std::uint32_t>(ch.retrans_queue.size())});
  }

  trace_pkt(obs::TraceKind::kHostEnqueue, pkt);

  const auto route = routes_.get(dst);
  if (!route) {
    // No route known. Park the packet (it already owns its send buffer) and
    // discover one on demand.
    ch.retrans_queue.push_back(QueuedPacket{std::move(pkt), 0, false});
    queue_depth_->record(ch.retrans_queue.size());
    if (mapper_ == nullptr) {
      // Without a mapper this is a hard error: drop and recycle.
      ch.retrans_queue.pop_back();
      ++stats_.no_route_drops;
      nic_.release_send_buffers();
      return;
    }
    begin_remap(dst, ch);
    return;
  }

  pkt.hdr.route = *route;
  ch.retrans_queue.push_back(QueuedPacket{std::move(pkt), 0, false});
  queue_depth_->record(ch.retrans_queue.size());
  QueuedPacket& qp = ch.retrans_queue.back();
  ++stats_.data_tx;
  put_on_wire(dst, qp, /*is_retransmit=*/false);
}

void ReliableFirmware::put_on_wire(HostId /*h*/, QueuedPacket& qp,
                                   bool is_retransmit) {
  qp.sent_once = true;
  // §5.1.3 error injection: every ~Nth data packet is "inserted in the
  // retransmission queue without actually transmitting it onto the network".
  if (should_drop_now()) {
    qp.last_sent = nic_.sched().now();
    trace_pkt(obs::TraceKind::kInjectedDrop, qp.pkt);
    return;
  }
  if (is_retransmit) {
    ++stats_.retransmissions;
    trace_pkt(obs::TraceKind::kRetransmit, qp.pkt);
  } else {
    trace_pkt(obs::TraceKind::kWireInject, qp.pkt);
  }
  // Stamp with the send-DMA completion time: the retransmission timer then
  // measures "unacknowledged since it actually left", which self-clocks the
  // protocol to wire drainage under load.
  qp.last_sent = nic_.inject(qp.pkt);
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

void ReliableFirmware::on_wire_packet(Packet pkt, bool crc_ok) {
  if (!crc_ok) {
    // Corrupt contents cannot be trusted — not even the ACK fields.
    ++stats_.corrupt_drops;
    trace_pkt(obs::TraceKind::kCorruptDrop, pkt);
    return;
  }
  // Misroute guard: a data or ACK packet whose destination field names some
  // other host reached us over a wrong route (a corrupted path-cache entry,
  // or a stale route racing a reconfiguration). Processing it would pollute
  // an innocent channel — worse, deliver payload to the wrong application.
  // Probes are exempt: the mapper's BFS *intends* to land on unknown hosts.
  if (pkt.hdr.dst != nic_.self() && (pkt.hdr.type == PacketType::kData ||
                                     pkt.hdr.type == PacketType::kControl ||
                                     pkt.hdr.type == PacketType::kAck)) {
    ++stats_.misroute_drops;
    trace_pkt(obs::TraceKind::kCorruptDrop, pkt);
    return;
  }
  switch (pkt.hdr.type) {
    case PacketType::kAck:
      ++stats_.acks_rx;
      process_ack(pkt.hdr.src, pkt.hdr.ack, pkt.hdr.ack_gen);
      return;
    case PacketType::kProbeHost:
    case PacketType::kProbeSwitch:
    case PacketType::kProbeReply:
      if (mapper_ != nullptr) mapper_->on_probe_packet(std::move(pkt));
      return;
    default:
      handle_data(std::move(pkt));
      return;
  }
}

void ReliableFirmware::handle_data(Packet pkt) {
  const HostId src = pkt.hdr.src;
  RxChannel& rxch = rx(src);

  if (pkt.hdr.generation != rxch.generation) {
    if (generation_newer(pkt.hdr.generation, rxch.generation)) {
      // The sender re-mapped and restarted its sequence space (§4.2).
      rxch.generation = pkt.hdr.generation;
      rxch.expected_seq = 1;
      rxch.pending_unacked = 0;
    } else if (cfg_.scrub_stale_adopt_threshold != 0 &&
               ++rxch.stale_run >= cfg_.scrub_stale_adopt_threshold) {
      // Generation wraparound handling (self-stabilization, docs/CHAOS.md):
      // a long unbroken run of "stale" traffic with zero acceptances means
      // OUR generation is the corrupt one — a real stale burst is finite
      // (bounded by the network's packet capacity) and interleaves with
      // current-generation traffic. Adopt the sender's generation and
      // resynchronize; any mismatch left over resolves through the sender's
      // own no-progress restart.
      ++stats_.scrub_gen_adoptions;
      rxch.generation = pkt.hdr.generation;
      rxch.expected_seq = 1;
      rxch.pending_unacked = 0;
      rxch.stale_run = 0;
      publish(FwEvent{FwEvent::Kind::kScrubRepair, nic_.self(), src,
                      rxch.generation, false, 0});
    } else {
      ++stats_.stale_gen_drops;
      trace_pkt(obs::TraceKind::kStaleGenDrop, pkt);
      return;
    }
  }
  rxch.stale_run = 0;

  if (pkt.hdr.flags & net::kFlagPiggyAck) {
    process_ack(src, pkt.hdr.ack, pkt.hdr.ack_gen);
  }

  const bool ack_requested = (pkt.hdr.flags & net::kFlagAckRequest) != 0;
  // ACKs can always be routed along the reverse of the path the data packet
  // just took (links are full duplex), even before any route to `src` has
  // been mapped — the same mechanism probe replies use.
  net::Route back;
  back.ports.assign(pkt.in_ports.rbegin(), pkt.in_ports.rend());

  if (pkt.hdr.seq == rxch.expected_seq) {
    ++rxch.expected_seq;
    ++rxch.pending_unacked;
    ++stats_.data_rx_in_order;
    trace_pkt(obs::TraceKind::kDeliver, pkt);
    const bool force_ack =
        rxch.pending_unacked >= policy_.config().receiver_coalesce_max;
    nic_.deliver_to_host(std::move(pkt));
    if (ack_requested || force_ack) send_explicit_ack(src, std::move(back));
  } else if (pkt.hdr.seq < rxch.expected_seq) {
    // Duplicate (our ACK was probably lost). Re-ACK when asked so the
    // sender stops retransmitting.
    ++stats_.dup_drops;
    trace_pkt(obs::TraceKind::kDupDrop, pkt, rxch.expected_seq);
    if (ack_requested) send_explicit_ack(src, std::move(back));
  } else {
    // Gap: go-back-N receivers drop everything until the expected sequence
    // number arrives (a simple dequeue, no buffering).
    ++stats_.ooo_drops;
    trace_pkt(obs::TraceKind::kOooDrop, pkt, rxch.expected_seq);
    if (ack_requested) send_explicit_ack(src, std::move(back));
  }
}

void ReliableFirmware::process_ack(HostId from, std::uint32_t ack,
                                   std::uint16_t ack_gen) {
  TxChannel& ch = tx(from);
  if (ack_gen != ch.generation) return;  // stale generation
  // Bounded-capacity guard (self-stabilization, docs/CHAOS.md): a cumulative
  // ACK can never exceed the highest sequence number ever sent, next_seq-1.
  // One that does means sender or receiver state is corrupt; honoring it
  // would silently free — i.e. permanently lose — undelivered messages. The
  // channel stalls instead, and the no-progress restart resynchronizes.
  if (ack >= ch.next_seq) {
    ++stats_.scrub_bogus_acks;
    return;
  }
  std::size_t freed = 0;
  auto& q = ch.retrans_queue;
  // Pop only a prefix that is strictly consecutive, nonzero, and ends
  // EXACTLY at `ack`. A legitimate cumulative ACK always acknowledges the
  // head of the unacknowledged window, so the freed run must land on the
  // ACK value precisely; any shortfall or gap means a queue entry's header
  // seq was corrupted, and honoring the ACK would free — i.e. permanently
  // lose — a message that was never delivered. Free nothing and leave the
  // queue for the scrubber to renumber instead.
  std::size_t cover = 0;
  std::uint32_t run = 0;
  bool bogus = false;
  for (const QueuedPacket& qp : q) {
    const std::uint32_t s = qp.pkt.hdr.seq;
    if (s > ack) break;  // scanned past the acknowledged window
    if (s == 0 || (run != 0 && s != run + 1)) {
      bogus = true;
      break;
    }
    run = s;
    ++cover;
  }
  if (bogus || (cover > 0 && run != ack)) {
    ++stats_.scrub_bogus_acks;
  } else {
    for (std::size_t i = 0; i < cover; ++i) q.pop_front();
    freed = cover;
  }
  if (freed > 0) {
    // One cumulative ACK frees a whole prefix — "a single operation".
    nic_.release_send_buffers(freed);
    ch.rounds_without_progress = 0;
    ch.last_progress = nic_.sched().now();
    ++stats_.ack_advances;
    trace_ch(obs::TraceKind::kAckRx, from, ack, ack_gen,
             static_cast<std::uint32_t>(freed));
  }
}

void ReliableFirmware::send_explicit_ack(HostId to,
                                         std::optional<net::Route> reverse_hint) {
  // Prefer the reverse of the path the triggering packet just took: it is
  // known-good as of right now, whereas the table route may be the very
  // path whose failure caused the sender to retransmit (links are full
  // duplex, so the reverse direction works iff the forward one did).
  auto route = std::move(reverse_hint);
  if (!route) route = routes_.get(to);
  if (!route) {
    // Needing to ACK *is* needing to communicate: trigger on-demand mapping
    // (§4.2) and send the ACK once a route home exists. Without a mapper the
    // peer's retransmission timer carries the cost until routes appear.
    if (mapper_ != nullptr) {
      rx(to).ack_owed = true;
      begin_remap(to, tx(to));
    }
    return;
  }
  nic_.cpu().submit(nic_.costs().mcp_ack_build, [this, to, route = *route] {
    RxChannel& rxch = rx(to);
    Packet a;
    a.hdr.src = nic_.self();
    a.hdr.dst = to;
    a.hdr.type = PacketType::kAck;
    a.hdr.ack = rxch.expected_seq - 1;
    a.hdr.ack_gen = rxch.generation;
    a.hdr.route = route;
    rxch.pending_unacked = 0;
    ++stats_.acks_explicit_tx;
    trace_ch(obs::TraceKind::kAckTx, to, a.hdr.ack, a.hdr.ack_gen);
    nic_.inject(std::move(a));
  });
}

// ---------------------------------------------------------------------------
// Retransmission timer (one per NIC, §4.1.1)
// ---------------------------------------------------------------------------

void ReliableFirmware::arm_timer() {
  nic_.sched().after(cfg_.retrans_interval, [this] { on_timer(); });
}

void ReliableFirmware::on_timer() {
  ++stats_.timer_fires;

  std::size_t non_empty = 0;
  for (const auto& [h, ch] : tx_) {
    if (!ch.retrans_queue.empty()) ++non_empty;
  }
  // Idle scans are not lifecycle events; tracing them would flood the ring
  // on long runs (the timer never stops ticking).
  if (non_empty > 0) {
    trace_ch(obs::TraceKind::kTimerFire, nic_.self(), 0, 0,
             static_cast<std::uint32_t>(non_empty));
  }
  const sim::Duration scan_cost =
      nic_.costs().timer_scan_base +
      non_empty * nic_.costs().timer_scan_per_queue;

  nic_.cpu().submit(scan_cost, [this] {
    // Periodic state-sanity scrub (self-stabilization): piggy-backed on the
    // timer scan so it shares the control processor's serialization — the
    // pass never races packet processing, exactly like the real firmware's
    // single control loop.
    if (cfg_.scrub_every != 0 && ++scrub_countdown_ >= cfg_.scrub_every) {
      scrub_countdown_ = 0;
      scrub_pass();
    }
    const sim::Time now = nic_.sched().now();
    for (auto& [h, ch] : tx_) {
      if (ch.retrans_queue.empty() || ch.remap_in_flight || ch.unreachable) {
        continue;
      }
      const QueuedPacket& oldest = ch.retrans_queue.front();
      if (!oldest.sent_once) continue;  // parked awaiting a route
      // last_sent can be in the future (send-DMA completion time of a
      // packet still draining onto the wire): not timed out.
      if (oldest.last_sent >= now ||
          now - oldest.last_sent < cfg_.retrans_interval) {
        continue;
      }

      if (ch.rounds_without_progress >= cfg_.fail_min_rounds &&
          now - ch.last_progress >= cfg_.fail_threshold) {
        declare_path_failure(h, ch);
      } else {
        retransmit_channel(h, ch);
      }
    }
    // Re-arm only now: the timer handler runs on the single control
    // processor, so an overloaded MCP stretches the effective timer period
    // instead of piling up unbounded retransmission work — as the real
    // firmware's one control loop does.
    arm_timer();
  });
}

void ReliableFirmware::retransmit_channel(HostId h, TxChannel& ch) {
  ++stats_.retrans_rounds;
  ++ch.rounds_without_progress;
  const sim::Time now = nic_.sched().now();
  std::size_t n = ch.retrans_queue.size();
  if (cfg_.retransmit_window != 0) {
    n = std::min<std::size_t>(n, cfg_.retransmit_window);
  }
  const std::uint16_t gen = ch.generation;
  std::size_t i = 0;
  for (QueuedPacket& qp : ch.retrans_queue) {
    if (i == n) break;
    ++i;
    // Provisional stamp so the next scan does not double-fire this round;
    // the real send-DMA completion time replaces it at injection.
    qp.last_sent = now;
    const std::uint32_t seq = qp.pkt.hdr.seq;
    const bool is_last = (i == n);
    // Each retransmission is queue motion plus a send-DMA setup on the slow
    // control processor; the packet bytes are already in SRAM (no copy). The
    // packet is looked up by (generation, seq) at execution time — it may
    // have been cumulatively acknowledged (and freed) meanwhile.
    nic_.cpu().submit(nic_.costs().retransmit_per_packet,
                      [this, h, gen, seq, is_last] {
                        retransmit_one(h, gen, seq, is_last);
                      });
  }
}

void ReliableFirmware::retransmit_one(HostId h, std::uint16_t gen,
                                      std::uint32_t seq, bool is_last) {
  TxChannel& ch = tx(h);
  if (ch.generation != gen) return;  // re-mapped meanwhile
  for (QueuedPacket& qp : ch.retrans_queue) {
    if (qp.pkt.hdr.seq != seq) continue;
    // Refresh the piggy-backed cumulative ACK to the current value.
    RxChannel& rxch = rx(h);
    qp.pkt.hdr.flags |= net::kFlagRetransmit | net::kFlagPiggyAck;
    qp.pkt.hdr.ack = rxch.expected_seq - 1;
    qp.pkt.hdr.ack_gen = rxch.generation;
    if (is_last) qp.pkt.hdr.flags |= net::kFlagAckRequest;  // resync promptly
    put_on_wire(h, qp, /*is_retransmit=*/true);
    return;
  }
  // Already acknowledged and freed: nothing to do.
}

// ---------------------------------------------------------------------------
// Permanent failures and on-demand re-mapping (§4.2)
// ---------------------------------------------------------------------------

void ReliableFirmware::declare_path_failure(HostId h, TxChannel& ch) {
  ++stats_.path_failures;
  trace_ch(obs::TraceKind::kPathFail, h, 0, ch.generation,
           static_cast<std::uint32_t>(ch.retrans_queue.size()));
  publish(FwEvent{FwEvent::Kind::kPathFail, nic_.self(), h, ch.generation,
                  false, static_cast<std::uint32_t>(ch.retrans_queue.size())});
  routes_.invalidate(h);
  if (mapper_ == nullptr) {
    ch.unreachable = true;
    drop_pending(h, ch);
    return;
  }
  // The mapper's cached path to h is the one that just failed; drop it so
  // the remap below re-probes instead of re-serving the dead route. A mapper
  // with proactive backups may promote the precomputed alternate instead
  // (returns true) — the remap below is then a one-step cache hit.
  ch.remap_promoted = mapper_->on_path_failure(h);
  begin_remap(h, ch);
}

void ReliableFirmware::begin_remap(HostId h, TxChannel& ch) {
  if (ch.remap_in_flight) return;
  ch.remap_in_flight = true;
  ch.remap_started = nic_.sched().now();
  ++stats_.remap_requests;
  trace_ch(obs::TraceKind::kRemapStart, h, 0, ch.generation);
  publish(FwEvent{FwEvent::Kind::kRemapStart, nic_.self(), h, ch.generation,
                  false, static_cast<std::uint32_t>(ch.retrans_queue.size()),
                  ch.remap_promoted});
  mapper_->request_route(h, [this, h](std::optional<net::Route> route) {
    finish_remap(h, std::move(route));
  });
}

void ReliableFirmware::finish_remap(HostId h, std::optional<net::Route> route) {
  TxChannel& ch = tx(h);
  ch.remap_in_flight = false;
  remap_latency_->record(nic_.sched().now() - ch.remap_started);
  trace_ch(obs::TraceKind::kRemapDone, h, 0, ch.generation,
           route.has_value() ? 1 : 0);
  publish(FwEvent{FwEvent::Kind::kRemapDone, nic_.self(), h, ch.generation,
                  route.has_value(),
                  static_cast<std::uint32_t>(ch.retrans_queue.size()),
                  ch.remap_promoted});
  if (!route) {
    // "If no alternative route to a node exists, the node is labeled as
    // unreachable and any pending packets are dropped."
    ch.remap_promoted = false;
    ch.unreachable = true;
    drop_pending(h, ch);
    return;
  }
  routes_.set(h, *route);

  // New generation: restart the sequence space and renumber everything that
  // is still pending, so stale packets in the network are recognizably old.
  ++ch.generation;
  std::uint32_t seq = 1;
  RxChannel& rxch = rx(h);
  for (QueuedPacket& qp : ch.retrans_queue) {
    qp.pkt.hdr.seq = seq++;
    qp.pkt.hdr.generation = ch.generation;
    qp.pkt.hdr.route = *route;
    qp.pkt.hdr.ack = rxch.expected_seq - 1;
    qp.pkt.hdr.ack_gen = rxch.generation;
    qp.pkt.hdr.flags |= net::kFlagAckRequest;  // re-sync fast
  }
  ch.next_seq = seq;
  ch.rounds_without_progress = 0;
  ch.last_progress = nic_.sched().now();
  ++stats_.generation_restarts;
  trace_ch(obs::TraceKind::kGenRestart, h, ch.next_seq, ch.generation,
           static_cast<std::uint32_t>(ch.retrans_queue.size()));
  publish(FwEvent{FwEvent::Kind::kGenRestart, nic_.self(), h, ch.generation,
                  true, static_cast<std::uint32_t>(ch.retrans_queue.size()),
                  ch.remap_promoted});
  ch.remap_promoted = false;  // one remap consumed the promotion

  // Resume: send every pending packet in order on the fresh route.
  {
    const std::uint16_t gen = ch.generation;
    const std::size_t n = ch.retrans_queue.size();
    std::size_t i = 0;
    for (QueuedPacket& qp : ch.retrans_queue) {
      ++i;
      qp.last_sent = nic_.sched().now();
      qp.sent_once = true;
      ++stats_.data_tx;
      const std::uint32_t seq = qp.pkt.hdr.seq;
      const bool is_last = (i == n);
      nic_.cpu().submit(nic_.costs().retransmit_per_packet,
                        [this, h, gen, seq, is_last] {
                          retransmit_one(h, gen, seq, is_last);
                        });
    }
  }

  // Pay any ACK debt toward this node now that we can reach it.
  if (rxch.ack_owed) {
    rxch.ack_owed = false;
    send_explicit_ack(h);
  }
}

void ReliableFirmware::nic_reset() {
  ++stats_.nic_resets;
  routes_.clear();
  publish(FwEvent{FwEvent::Kind::kNicReset, nic_.self(), nic_.self(), 0, false,
                  0});
  if (mapper_ == nullptr) return;
  // A firmware restart loses the mapper's volatile SRAM state too (path
  // cache, attach-port knowledge) — everything below rediscovers cold.
  mapper_->on_nic_reset();
  for (auto& [h, ch] : tx_) {
    if (ch.retrans_queue.empty() || ch.unreachable) continue;
    // Channels with work in flight rediscover their path immediately; the
    // resulting generation restart renumbers and resends the queue, so the
    // reset is invisible to the layers above (modulo latency).
    begin_remap(h, ch);
  }
}

void ReliableFirmware::exclude_peer(HostId peer) {
  TxChannel& ch = tx(peer);
  if (ch.unreachable) return;  // already down (local detector won the race)
  ++stats_.peer_exclusions;
  publish(FwEvent{FwEvent::Kind::kPeerExcluded, nic_.self(), peer,
                  ch.generation, false,
                  static_cast<std::uint32_t>(ch.retrans_queue.size())});
  routes_.invalidate(peer);
  // The *node* is dead, not just the path: the mapper drops both cache slots
  // (a backup route to a corpse must never be promoted).
  if (mapper_ != nullptr) mapper_->on_peer_dead(peer);
  ch.unreachable = true;
  ch.rounds_without_progress = 0;
  drop_pending(peer, ch);
}

// ---------------------------------------------------------------------------
// State-sanity scrubbing (self-stabilization, docs/CHAOS.md)
// ---------------------------------------------------------------------------

void ReliableFirmware::scrub_now() { scrub_pass(); }

void ReliableFirmware::scrub_pass() {
  ++stats_.scrub_passes;
  for (auto& [h, ch] : tx_) {
    if (ch.unreachable || ch.remap_in_flight) continue;
    // Bounded-capacity invariants of a healthy sender channel: sequence
    // numbers start at 1 (0 is unassignable), the retransmission queue is a
    // strictly consecutive run of the current generation, and next_seq
    // continues the queue tail.
    bool bad = ch.next_seq == 0;
    if (!bad && !ch.retrans_queue.empty()) {
      const auto& q = ch.retrans_queue;
      std::uint32_t expect = q.front().pkt.hdr.seq;
      if (expect == 0) bad = true;
      for (const QueuedPacket& qp : q) {
        if (bad) break;
        if (qp.pkt.hdr.generation != ch.generation ||
            qp.pkt.hdr.seq != expect++) {
          bad = true;
        }
      }
      if (!bad && q.back().pkt.hdr.seq + 1 != ch.next_seq) bad = true;
    }
    if (!bad) {
      ch.scrub_strikes = 0;
      continue;
    }
    if (repair_tx(h, ch)) return;  // escalated to nic_reset: all channels
                                   // are being remapped, stop the pass
  }
  for (auto& [h, rxch] : rx_) {
    if (rxch.expected_seq == 0) {
      // expected_seq 0 makes every piggy-backed ack underflow to 2^32-1
      // (which the peer's bogus-ack guard rejects, stalling the reverse
      // direction). Re-anchor at 1; the sender's generation restart
      // resynchronizes whatever the true position was.
      ++stats_.scrub_rx_repairs;
      rxch.expected_seq = 1;
      rxch.pending_unacked = 0;
      publish(FwEvent{FwEvent::Kind::kScrubRepair, nic_.self(), h,
                      rxch.generation, false, 0});
    }
  }
}

bool ReliableFirmware::repair_tx(HostId h, TxChannel& ch) {
  ++stats_.scrub_tx_repairs;
  ++ch.scrub_strikes;
  trace_ch(obs::TraceKind::kPathFail, h, ch.next_seq, ch.generation,
           static_cast<std::uint32_t>(ch.retrans_queue.size()));
  publish(FwEvent{FwEvent::Kind::kScrubRepair, nic_.self(), h, ch.generation,
                  false, static_cast<std::uint32_t>(ch.retrans_queue.size())});
  if (cfg_.scrub_strike_limit != 0 &&
      ch.scrub_strikes >= cfg_.scrub_strike_limit) {
    // Local repair is not converging (state is being re-corrupted faster
    // than the renumber machinery stabilizes it): last resort is a full
    // firmware restart, which rebuilds every channel through §4.2 remapping.
    ch.scrub_strikes = 0;
    ++stats_.scrub_resets;
    nic_reset();
    return true;
  }
  const auto route = routes_.get(h);
  if (!route) {
    // No route to resend over: let the remap machinery do the restart (its
    // finish_remap renumbers the queue exactly like the repair below).
    if (mapper_ != nullptr) {
      begin_remap(h, ch);
    } else {
      ch.unreachable = true;
      drop_pending(h, ch);
    }
    return false;
  }
  // Forced generation restart: renumber the pending queue from 1 under a
  // fresh generation and resend in order — identical to the §4.2 recovery
  // after a successful remap, minus the route change. Corrupted headers
  // (seq, generation, stale piggy-ack fields) are all rewritten here, so a
  // single pass repairs any combination of queue-entry corruption.
  ++ch.generation;
  std::uint32_t seq = 1;
  RxChannel& rxch = rx(h);
  for (QueuedPacket& qp : ch.retrans_queue) {
    qp.pkt.hdr.seq = seq++;
    qp.pkt.hdr.generation = ch.generation;
    qp.pkt.hdr.route = *route;
    qp.pkt.hdr.ack = rxch.expected_seq - 1;
    qp.pkt.hdr.ack_gen = rxch.generation;
    qp.pkt.hdr.flags |= net::kFlagAckRequest;  // re-sync fast
  }
  ch.next_seq = seq;
  ch.rounds_without_progress = 0;
  ch.last_progress = nic_.sched().now();
  ++stats_.generation_restarts;
  trace_ch(obs::TraceKind::kGenRestart, h, ch.next_seq, ch.generation,
           static_cast<std::uint32_t>(ch.retrans_queue.size()));
  publish(FwEvent{FwEvent::Kind::kGenRestart, nic_.self(), h, ch.generation,
                  true, static_cast<std::uint32_t>(ch.retrans_queue.size())});
  const std::uint16_t gen = ch.generation;
  const std::size_t n = ch.retrans_queue.size();
  std::size_t i = 0;
  for (QueuedPacket& qp : ch.retrans_queue) {
    ++i;
    qp.last_sent = nic_.sched().now();
    qp.sent_once = true;
    ++stats_.data_tx;
    const std::uint32_t rseq = qp.pkt.hdr.seq;
    const bool is_last = (i == n);
    nic_.cpu().submit(nic_.costs().retransmit_per_packet,
                      [this, h, gen, rseq, is_last] {
                        retransmit_one(h, gen, rseq, is_last);
                      });
  }
  return false;
}

TxChannel* ReliableFirmware::chaos_tx_channel(HostId h) {
  auto it = tx_.find(h);
  return it == tx_.end() ? nullptr : &it->second;
}

RxChannel* ReliableFirmware::chaos_rx_channel(HostId h) {
  auto it = rx_.find(h);
  return it == rx_.end() ? nullptr : &it->second;
}

std::vector<HostId> ReliableFirmware::chaos_tx_peers() const {
  std::vector<HostId> out;
  out.reserve(tx_.size());
  for (const auto& [h, ch] : tx_) out.push_back(h);
  return out;
}

std::vector<HostId> ReliableFirmware::chaos_rx_peers() const {
  std::vector<HostId> out;
  out.reserve(rx_.size());
  for (const auto& [h, ch] : rx_) out.push_back(h);
  return out;
}

void ReliableFirmware::drop_pending(HostId /*h*/, TxChannel& ch) {
  const std::size_t n = ch.retrans_queue.size();
  if (n > 0) {
    stats_.unreachable_drops += n;
    ch.retrans_queue.clear();
    nic_.release_send_buffers(n);
  }
}

}  // namespace sanfault::firmware
