// Hierarchical fault domains: host < edge switch < pod < fabric root.
//
// DAOS-style placement input: the fault-domain tree is a static,
// non-overlapping partition of the hosts derived from the fabric shape
// (net::make_clos_fabric pods; figure-2 leaf switches; the trivial single
// domain otherwise). Placement policies consult it to keep a shard's primary
// and backup in distinct domains, so no single pod-level fault (edge/agg
// death, whole-pod power loss) can take out both replicas of any shard.
//
// The tree is shape-only and immutable; liveness is layered on top by
// FaultDomainView, which joins the tree with a membership oracle (the SWIM
// agent's confirmed-dead set) to answer "how many live hosts does pod p
// still have".
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <vector>

#include "net/ids.hpp"
#include "net/topology.hpp"

namespace sanfault::membership {

class FaultDomainTree {
 public:
  /// Trivial tree: every host in one pod behind one edge (single-switch
  /// rigs, or fabrics whose shape carries no placement information).
  static FaultDomainTree flat(std::size_t num_hosts) {
    FaultDomainTree t;
    t.edge_of_.assign(num_hosts, 0);
    t.pod_of_.assign(num_hosts, 0);
    t.num_edges_ = num_hosts == 0 ? 0 : 1;
    t.num_pods_ = t.num_edges_;
    return t;
  }

  /// Derive from a freshly built Clos fabric: host i hangs off edge
  /// (i mod num_edges); edges are pod-major, k/2 per pod.
  static FaultDomainTree from_clos(const net::ClosFabric& f) {
    const std::size_t m = f.cfg.k / 2;
    const std::size_t num_edges = f.edges.size();
    FaultDomainTree t;
    t.num_edges_ = num_edges;
    t.num_pods_ = f.cfg.k;
    t.edge_of_.reserve(f.hosts.size());
    t.pod_of_.reserve(f.hosts.size());
    for (std::size_t i = 0; i < f.hosts.size(); ++i) {
      const std::size_t e = i % num_edges;
      t.edge_of_.push_back(static_cast<std::uint32_t>(e));
      t.pod_of_.push_back(static_cast<std::uint32_t>(e / m));
    }
    return t;
  }

  /// Generic form: the caller supplies the pod index per host (harness
  /// clusters expose this for every topology kind). Edges default to pods.
  static FaultDomainTree from_pods(std::vector<std::uint32_t> pods) {
    FaultDomainTree t;
    std::uint32_t hi = 0;
    for (const std::uint32_t p : pods) hi = std::max(hi, p);
    t.pod_of_ = std::move(pods);
    t.edge_of_ = t.pod_of_;
    t.num_pods_ = t.pod_of_.empty() ? 0 : hi + 1;
    t.num_edges_ = t.num_pods_;
    return t;
  }

  [[nodiscard]] std::size_t num_hosts() const { return pod_of_.size(); }
  [[nodiscard]] std::size_t num_pods() const { return num_pods_; }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  [[nodiscard]] std::uint32_t pod_of(net::HostId h) const {
    assert(h.v < pod_of_.size());
    return pod_of_[h.v];
  }
  [[nodiscard]] std::uint32_t edge_of(net::HostId h) const {
    assert(h.v < edge_of_.size());
    return edge_of_[h.v];
  }
  [[nodiscard]] bool same_pod(net::HostId a, net::HostId b) const {
    return pod_of(a) == pod_of(b);
  }

  [[nodiscard]] std::vector<net::HostId> hosts_in_pod(std::uint32_t pod) const {
    std::vector<net::HostId> out;
    for (std::uint32_t i = 0; i < pod_of_.size(); ++i) {
      if (pod_of_[i] == pod) out.push_back(net::HostId{i});
    }
    return out;
  }

 private:
  std::vector<std::uint32_t> edge_of_;  // host -> edge-switch ordinal
  std::vector<std::uint32_t> pod_of_;   // host -> pod ordinal
  std::size_t num_edges_ = 0;
  std::size_t num_pods_ = 0;
};

/// Tree + liveness oracle. The oracle answers "is this host confirmed dead"
/// from this node's local membership view (SwimAgent::confirmed_dead); a
/// null oracle means everyone is live (placement-time queries).
class FaultDomainView {
 public:
  using DeadOracle = std::function<bool(net::HostId)>;

  explicit FaultDomainView(const FaultDomainTree& tree, DeadOracle dead = {})
      : tree_(&tree), dead_(std::move(dead)) {}

  [[nodiscard]] const FaultDomainTree& tree() const { return *tree_; }

  [[nodiscard]] bool is_live(net::HostId h) const {
    return !dead_ || !dead_(h);
  }

  [[nodiscard]] std::size_t live_in_pod(std::uint32_t pod) const {
    std::size_t n = 0;
    for (std::uint32_t i = 0; i < tree_->num_hosts(); ++i) {
      const net::HostId h{i};
      if (tree_->pod_of(h) == pod && is_live(h)) ++n;
    }
    return n;
  }

  /// Pods with no live host left — a whole fault domain is down.
  [[nodiscard]] std::vector<std::uint32_t> dead_pods() const {
    std::vector<std::uint32_t> out;
    for (std::uint32_t p = 0; p < tree_->num_pods(); ++p) {
      if (live_in_pod(p) == 0) out.push_back(p);
    }
    return out;
  }

 private:
  const FaultDomainTree* tree_;
  DeadOracle dead_;
};

}  // namespace sanfault::membership
