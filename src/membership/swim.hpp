// SWIM-style gossip failure detector (Das/Gupta/Motivala, adapted to the
// simulated SAN), the cluster-level complement to the paper's per-NIC
// no-progress thresholds. DAOS runs the same split: SWIM detects, fault
// domains place, exclusion reacts (SNIPPETS.md §1).
//
// One SwimAgent per member host, riding the host's vmmc::MsgEndpoint as a
// sideband message family (a pre-inbox tap claims gossip messages by their
// leading type byte, so a KV server and its membership agent share one
// ring). Every protocol period the agent:
//
//  * probes one member (shuffled round-robin, seeded Rng — deterministic);
//  * on direct-ack timeout, asks k other members to probe indirectly
//    (probe-req) and relay the ack — a slow-but-alive member rescued by any
//    relay is never suspected;
//  * with no ack by period end, marks the target *suspected* and gossips
//    that. A suspect that hears about itself refutes by bumping its
//    incarnation number and gossiping alive(inc+1), which overrides the
//    suspicion everywhere;
//  * a suspicion that survives `suspect_timeout` is *confirmed*: the member
//    is declared dead, the confirm hook fires (mapper-cache exclusion, shard
//    failover), and dead state gossips out. Dead is terminal — rejoining is
//    an administrative act, as in DAOS, not a protocol transition.
//
// Dissemination is piggybacked: every ping/ack/probe-req carries up to
// `max_piggyback` membership updates, each retransmitted a budgeted
// `dissemination_mult * ceil(log2(n))` times, freshest-first. An update
// about the message's destination is always included, so a suspected member
// learns of its suspicion on the next probe it receives.
//
// Everything is scheduler-time and seeded-Rng driven: two same-seed runs
// produce byte-identical event logs (tests/membership_test.cpp compares
// them), and detection latency is bounded by
//   suspect_timeout + protocol_period * dissemination_rounds(n)
// (the property test checks the bound on clos-64).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/ids.hpp"
#include "sim/process.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "vmmc/rpc.hpp"

namespace sanfault::membership {

enum class MemberState : std::uint8_t { kAlive = 0, kSuspect = 1, kDead = 2 };

struct SwimConfig {
  /// One probe round is launched per period; also the dissemination clock.
  sim::Duration protocol_period = sim::milliseconds(1);
  /// Direct-ack wait before escalating to indirect probes.
  sim::Duration probe_timeout = sim::microseconds(200);
  /// Suspicion age at which a member is confirmed dead (unless refuted).
  sim::Duration suspect_timeout = sim::milliseconds(3);
  /// Indirect probe fan-out after a direct-ack timeout.
  std::size_t k_indirect = 3;
  /// Max membership updates piggybacked per gossip message.
  std::size_t max_piggyback = 8;
  /// Each update is re-gossiped dissemination_mult * ceil(log2(n)) times.
  std::uint32_t dissemination_mult = 3;
  /// Artificial delay before this agent acks a ping — models a member whose
  /// host is processing-bound (the indirect-probe rescue scenario in tests).
  sim::Duration ack_delay = 0;
  std::uint64_t seed = 0x5357494dull;
  /// Record a per-agent human-readable event log (determinism tests).
  bool log_events = false;
};

struct SwimStats {
  std::uint64_t probe_rounds = 0;
  std::uint64_t pings_tx = 0;
  std::uint64_t pings_rx = 0;
  std::uint64_t acks_tx = 0;
  std::uint64_t acks_rx = 0;
  std::uint64_t probe_timeouts = 0;   // direct ack missed
  std::uint64_t ping_reqs_tx = 0;
  std::uint64_t ping_reqs_rx = 0;
  std::uint64_t indirect_acks_relayed = 0;
  std::uint64_t suspects = 0;         // local suspicion transitions
  std::uint64_t refutations = 0;      // own incarnation bumps
  std::uint64_t confirms = 0;         // members this node declared dead
  std::uint64_t updates_rx = 0;       // piggybacked updates applied
  std::uint64_t gossip_msgs_tx = 0;
  std::uint64_t gossip_bytes_tx = 0;
};

class SwimAgent {
 public:
  /// `members` is the full membership (self included or not — self is
  /// filtered). All members must be mesh-connected on `msgs` before start().
  SwimAgent(sim::Scheduler& sched, vmmc::MsgEndpoint& msgs,
            const std::vector<net::HostId>& members, SwimConfig cfg = {});
  ~SwimAgent();

  /// Install the gossip tap and spawn the probe loop.
  void start();

  /// Fires exactly once per member this node confirms dead (whether by its
  /// own suspicion timer or by receiving dead gossip). Multiple hooks run in
  /// installation order — firmware exclusion and the EC repair machine both
  /// listen without knowing about each other.
  using ConfirmHook = std::function<void(net::HostId dead, sim::Time at)>;
  void set_confirm_hook(ConfirmHook hook) {
    confirm_hooks_.clear();
    confirm_hooks_.push_back(std::move(hook));
  }
  void add_confirm_hook(ConfirmHook hook) {
    confirm_hooks_.push_back(std::move(hook));
  }

  [[nodiscard]] net::HostId self() const { return msgs_.host(); }
  [[nodiscard]] MemberState state_of(net::HostId h) const;
  [[nodiscard]] bool confirmed_dead(net::HostId h) const {
    return state_of(h) == MemberState::kDead;
  }
  /// When this node confirmed `h` dead; sim::kNever if it has not.
  [[nodiscard]] sim::Time confirm_time(net::HostId h) const;
  [[nodiscard]] std::uint32_t incarnation() const { return my_inc_; }
  [[nodiscard]] const SwimStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<std::string>& log() const { return log_; }
  [[nodiscard]] const SwimConfig& config() const { return cfg_; }

  /// Updates-per-gossip budget: how many times each state change is
  /// re-transmitted before it stops riding outgoing messages.
  [[nodiscard]] static std::uint32_t dissemination_rounds(
      const SwimConfig& cfg, std::size_t n);
  /// The detection-latency bound the property tests gate on:
  /// suspect_timeout + protocol_period * dissemination_rounds(n).
  [[nodiscard]] static sim::Duration detection_bound(const SwimConfig& cfg,
                                                     std::size_t n);

 private:
  struct Member {
    MemberState state = MemberState::kAlive;
    std::uint32_t inc = 0;
    bool timer_armed = false;
    sim::EventHandle suspect_timer;
    sim::Time confirmed_at = sim::kNever;
  };
  struct GossipEntry {
    MemberState state = MemberState::kAlive;
    std::uint32_t inc = 0;
    std::uint32_t sends_left = 0;
  };
  struct ProbeRound {
    bool acked = false;
  };

  bool on_msg(const vmmc::Msg& m);
  sim::Process period_loop();
  sim::Process probe_round(net::HostId target);
  sim::Process post_msg(net::HostId to, std::vector<std::uint8_t> bytes);
  sim::Process delayed_ack(net::HostId to, std::uint64_t nonce);
  void send_ack(net::HostId to, std::uint64_t nonce);

  bool next_target(net::HostId* out);
  void apply_update(net::HostId h, MemberState st, std::uint32_t inc);
  void locally_suspect(net::HostId h);
  void confirm_dead(net::HostId h);
  void enqueue_update(net::HostId h, MemberState st, std::uint32_t inc);
  /// Pop up to max_piggyback updates (the destination's entry rides first).
  std::vector<std::uint8_t> encode_msg(std::uint8_t type, std::uint64_t nonce,
                                       net::HostId target, net::HostId dst);
  void logf(const std::string& line);

  sim::Scheduler& sched_;
  vmmc::MsgEndpoint& msgs_;
  SwimConfig cfg_;
  sim::Rng rng_;
  std::uint32_t my_inc_ = 0;
  std::map<std::uint32_t, Member> members_;      // keyed by HostId::v
  std::map<std::uint32_t, GossipEntry> gossip_;  // pending dissemination
  std::vector<net::HostId> rotation_;
  std::size_t rotation_idx_ = 0;
  std::uint64_t next_nonce_ = 1;
  std::map<std::uint64_t, ProbeRound*> rounds_;  // nonce -> in-flight round
  struct Relay {
    net::HostId requester;
    std::uint64_t nonce = 0;  // the requester's probe-req nonce
  };
  std::map<std::uint64_t, Relay> relays_;  // our ping nonce -> who asked
  std::vector<ConfirmHook> confirm_hooks_;
  SwimStats stats_;
  std::vector<std::string> log_;
  bool started_ = false;
};

}  // namespace sanfault::membership
