#include "membership/swim.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"
#include "sim/awaitables.hpp"

namespace sanfault::membership {

namespace {

// Gossip wire family. Leading type byte is disjoint from kv::MsgType (1..4)
// so both can share one MsgEndpoint ring via the pre-inbox tap.
constexpr std::uint8_t kPingByte = 0x21;
constexpr std::uint8_t kAckByte = 0x22;
constexpr std::uint8_t kPingReqByte = 0x23;

constexpr std::uint64_t kGossipTag = 0x5357494dull;  // "SWIM"

void put_u8(std::vector<std::uint8_t>& b, std::uint8_t v) { b.push_back(v); }
void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

struct Reader {
  const std::vector<std::uint8_t>& b;
  std::size_t off = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (off + 1 > b.size()) { ok = false; return 0; }
    return b[off++];
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    if (off + 4 > b.size()) { ok = false; return 0; }
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[off++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    if (off + 8 > b.size()) { ok = false; return 0; }
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[off++]) << (8 * i);
    return v;
  }
};

std::uint32_t ceil_log2(std::size_t n) {
  std::uint32_t b = 0;
  while ((std::size_t{1} << b) < n) ++b;
  return b;
}

}  // namespace

std::uint32_t SwimAgent::dissemination_rounds(const SwimConfig& cfg,
                                              std::size_t n) {
  return cfg.dissemination_mult * std::max<std::uint32_t>(1, ceil_log2(std::max<std::size_t>(n, 2)));
}

sim::Duration SwimAgent::detection_bound(const SwimConfig& cfg, std::size_t n) {
  return cfg.suspect_timeout +
         cfg.protocol_period *
             static_cast<sim::Duration>(dissemination_rounds(cfg, n));
}

SwimAgent::SwimAgent(sim::Scheduler& sched, vmmc::MsgEndpoint& msgs,
                     const std::vector<net::HostId>& members, SwimConfig cfg)
    : sched_(sched),
      msgs_(msgs),
      cfg_(cfg),
      rng_(cfg.seed ^ (0x9e3779b97f4a7c15ull * (msgs.host().v + 1))) {
  for (const net::HostId h : members) {
    if (h == self()) continue;
    members_.emplace(h.v, Member{});
  }

  obs::Registry& reg = obs::Registry::of(sched_);
  const std::string node = "{node=" + std::to_string(self().v) + "}";
  reg.add_collector(this, [this, &reg, node] {
    const SwimStats& s = stats_;
    reg.counter("membership.probe_rounds" + node, "rounds")
        .set(s.probe_rounds);
    reg.counter("membership.pings_tx" + node, "messages").set(s.pings_tx);
    reg.counter("membership.acks_rx" + node, "messages").set(s.acks_rx);
    reg.counter("membership.probe_timeouts" + node, "rounds")
        .set(s.probe_timeouts);
    reg.counter("membership.ping_reqs_tx" + node, "messages")
        .set(s.ping_reqs_tx);
    reg.counter("membership.indirect_acks_relayed" + node, "messages")
        .set(s.indirect_acks_relayed);
    reg.counter("membership.suspects" + node, "transitions").set(s.suspects);
    reg.counter("membership.refutations" + node, "incarnations")
        .set(s.refutations);
    reg.counter("membership.confirms" + node, "members").set(s.confirms);
    reg.counter("membership.updates_rx" + node, "updates").set(s.updates_rx);
    reg.counter("membership.gossip_msgs_tx" + node, "messages")
        .set(s.gossip_msgs_tx);
    reg.counter("membership.gossip_bytes_tx" + node, "bytes")
        .set(s.gossip_bytes_tx);
  });
}

SwimAgent::~SwimAgent() {
  if (auto* r = obs::Registry::find(sched_)) r->remove_collectors(this);
  if (started_) msgs_.set_tap({});
}

void SwimAgent::start() {
  assert(!started_ && "SwimAgent::start() called twice");
  started_ = true;
  msgs_.set_tap([this](const vmmc::Msg& m) { return on_msg(m); });
  period_loop();
}

MemberState SwimAgent::state_of(net::HostId h) const {
  if (h == self()) return MemberState::kAlive;
  auto it = members_.find(h.v);
  return it == members_.end() ? MemberState::kAlive : it->second.state;
}

sim::Time SwimAgent::confirm_time(net::HostId h) const {
  auto it = members_.find(h.v);
  return it == members_.end() ? sim::kNever : it->second.confirmed_at;
}

void SwimAgent::logf(const std::string& line) {
  if (cfg_.log_events) {
    log_.push_back("t=" + std::to_string(sched_.now()) + " " + line);
  }
}

// --- gossip dissemination ---------------------------------------------------

void SwimAgent::enqueue_update(net::HostId h, MemberState st,
                               std::uint32_t inc) {
  gossip_[h.v] = GossipEntry{
      st, inc, dissemination_rounds(cfg_, members_.size() + 1)};
}

std::vector<std::uint8_t> SwimAgent::encode_msg(std::uint8_t type,
                                                std::uint64_t nonce,
                                                net::HostId target,
                                                net::HostId dst) {
  // Select piggybacked updates: the entry about the destination always rides
  // (budget or not — it is how a suspect learns to refute); the rest go
  // freshest-budget-first, lowest member id breaking ties.
  std::vector<std::pair<std::uint32_t, GossipEntry*>> picked;
  if (auto it = gossip_.find(dst.v); it != gossip_.end()) {
    picked.emplace_back(it->first, &it->second);
  }
  std::vector<std::pair<std::uint32_t, GossipEntry*>> rest;
  for (auto& [hv, e] : gossip_) {
    if (hv == dst.v || e.sends_left == 0) continue;
    rest.emplace_back(hv, &e);
  }
  std::stable_sort(rest.begin(), rest.end(), [](const auto& a, const auto& b) {
    if (a.second->sends_left != b.second->sends_left) {
      return a.second->sends_left > b.second->sends_left;
    }
    return a.first < b.first;
  });
  for (auto& p : rest) {
    if (picked.size() >= cfg_.max_piggyback) break;
    picked.push_back(p);
  }

  std::vector<std::uint8_t> b;
  b.reserve(14 + picked.size() * 9);
  put_u8(b, type);
  put_u64(b, nonce);
  put_u32(b, target.v);
  put_u8(b, static_cast<std::uint8_t>(picked.size()));
  for (auto& [hv, e] : picked) {
    put_u32(b, hv);
    put_u8(b, static_cast<std::uint8_t>(e->state));
    put_u32(b, e->inc);
    if (e->sends_left > 0) --e->sends_left;
  }
  return b;
}

sim::Process SwimAgent::post_msg(net::HostId to,
                                 std::vector<std::uint8_t> bytes) {
  if (!msgs_.connected(to)) co_return;  // partial meshes: silently skip
  ++stats_.gossip_msgs_tx;
  stats_.gossip_bytes_tx += bytes.size();
  co_await msgs_.post(to, std::move(bytes), kGossipTag);
}

// --- state machine ----------------------------------------------------------

void SwimAgent::apply_update(net::HostId h, MemberState st,
                             std::uint32_t inc) {
  if (h == self()) {
    // Someone thinks we are suspect/dead. Refute suspicion by outbidding the
    // incarnation it was raised under. A dead verdict about ourselves is not
    // refutable (dead is terminal everywhere); survivors' views of us are
    // beyond repair at that point and rejoin is administrative.
    if (st == MemberState::kSuspect && inc >= my_inc_) {
      my_inc_ = inc + 1;
      ++stats_.refutations;
      logf("refute inc=" + std::to_string(my_inc_));
      enqueue_update(self(), MemberState::kAlive, my_inc_);
    }
    return;
  }
  auto it = members_.find(h.v);
  if (it == members_.end()) return;  // not a member we track
  Member& m = it->second;
  if (m.state == MemberState::kDead) return;  // terminal

  switch (st) {
    case MemberState::kDead:
      confirm_dead(h);
      return;
    case MemberState::kSuspect:
      if (inc > m.inc || (inc == m.inc && m.state == MemberState::kAlive)) {
        m.inc = inc;
        m.state = MemberState::kSuspect;
        if (!m.timer_armed) {
          m.timer_armed = true;
          m.suspect_timer = sched_.after(cfg_.suspect_timeout, [this, h] {
            Member& mm = members_[h.v];
            mm.timer_armed = false;
            if (mm.state == MemberState::kSuspect) confirm_dead(h);
          });
        }
        ++stats_.suspects;
        logf("suspect host=" + std::to_string(h.v) +
             " inc=" + std::to_string(inc));
        enqueue_update(h, MemberState::kSuspect, inc);
      }
      return;
    case MemberState::kAlive:
      if (inc > m.inc) {
        m.inc = inc;
        if (m.state == MemberState::kSuspect) {
          m.state = MemberState::kAlive;
          if (m.timer_armed) {
            sched_.cancel(m.suspect_timer);
            m.timer_armed = false;
          }
          logf("unsuspect host=" + std::to_string(h.v) +
               " inc=" + std::to_string(inc));
        }
        enqueue_update(h, MemberState::kAlive, inc);
      }
      return;
  }
}

void SwimAgent::locally_suspect(net::HostId h) {
  auto it = members_.find(h.v);
  if (it == members_.end() || it->second.state != MemberState::kAlive) return;
  apply_update(h, MemberState::kSuspect, it->second.inc);
}

void SwimAgent::confirm_dead(net::HostId h) {
  Member& m = members_[h.v];
  if (m.state == MemberState::kDead) return;
  if (m.timer_armed) {
    sched_.cancel(m.suspect_timer);
    m.timer_armed = false;
  }
  m.state = MemberState::kDead;
  m.confirmed_at = sched_.now();
  ++stats_.confirms;
  logf("confirm host=" + std::to_string(h.v));
  enqueue_update(h, MemberState::kDead, m.inc);
  for (const auto& hook : confirm_hooks_) hook(h, m.confirmed_at);
}

// --- probe loop -------------------------------------------------------------

bool SwimAgent::next_target(net::HostId* out) {
  // Shuffled round-robin over the non-dead members: every member is probed
  // exactly once per cycle, cycle order re-shuffled with the agent's own
  // seeded Rng (SWIM's bounded-staleness guarantee, deterministically).
  for (std::size_t attempts = 0; attempts < 2; ++attempts) {
    while (rotation_idx_ < rotation_.size()) {
      const net::HostId h = rotation_[rotation_idx_++];
      auto it = members_.find(h.v);
      if (it != members_.end() && it->second.state != MemberState::kDead) {
        *out = h;
        return true;
      }
    }
    rotation_.clear();
    rotation_idx_ = 0;
    for (const auto& [hv, m] : members_) {
      if (m.state != MemberState::kDead) rotation_.push_back(net::HostId{hv});
    }
    for (std::size_t i = rotation_.size(); i > 1; --i) {
      std::swap(rotation_[i - 1], rotation_[rng_.uniform(i)]);
    }
  }
  return false;  // everyone else is dead
}

sim::Process SwimAgent::period_loop() {
  // Stagger the first round by a per-host fraction of a period, so a large
  // cluster's probes spread over the period instead of bursting at t=0.
  co_await sim::DelayFor{
      sched_, cfg_.protocol_period +
                  (cfg_.protocol_period * static_cast<sim::Duration>(self().v % 61)) / 61};
  for (;;) {
    net::HostId target;
    if (next_target(&target)) probe_round(target);
    co_await sim::DelayFor{sched_, cfg_.protocol_period};
  }
}

sim::Process SwimAgent::probe_round(net::HostId target) {
  ++stats_.probe_rounds;
  ProbeRound rd;
  const std::uint64_t nonce = next_nonce_++;
  rounds_[nonce] = &rd;

  ++stats_.pings_tx;
  post_msg(target, encode_msg(kPingByte, nonce, target, target));
  co_await sim::DelayFor{sched_, cfg_.probe_timeout};
  // The direct window is over; from here only the indirect phase (its own
  // nonce) can still clear the target. A direct ack limping in later is
  // ignored — the suspicion/refutation machinery is the recovery path for
  // genuinely slow members, and the k-indirect rescue stays observable.
  rounds_.erase(nonce);

  if (!rd.acked) {
    ++stats_.probe_timeouts;
    const std::uint64_t inonce = next_nonce_++;
    rounds_[inonce] = &rd;
    // Indirect probes: ask k members (not self, not the target) to ping the
    // target and relay its ack under our nonce.
    std::vector<net::HostId> cands;
    for (const auto& [hv, m] : members_) {
      if (hv == target.v || m.state == MemberState::kDead) continue;
      cands.push_back(net::HostId{hv});
    }
    for (std::size_t k = 0; k < cfg_.k_indirect && !cands.empty(); ++k) {
      const std::size_t i = rng_.uniform(cands.size());
      const net::HostId helper = cands[i];
      cands[i] = cands.back();
      cands.pop_back();
      ++stats_.ping_reqs_tx;
      post_msg(helper, encode_msg(kPingReqByte, inonce, target, helper));
    }
    // Wait out the rest of the protocol period (minus slack so the verdict
    // lands before the next round begins).
    sim::Duration wait = cfg_.protocol_period - cfg_.probe_timeout;
    wait -= wait / 10;
    if (wait > 0) co_await sim::DelayFor{sched_, wait};
    rounds_.erase(inonce);
  }

  if (!rd.acked) locally_suspect(target);
}

void SwimAgent::send_ack(net::HostId to, std::uint64_t nonce) {
  ++stats_.acks_tx;
  post_msg(to, encode_msg(kAckByte, nonce, to, to));
}

sim::Process SwimAgent::delayed_ack(net::HostId to, std::uint64_t nonce) {
  co_await sim::DelayFor{sched_, cfg_.ack_delay};
  send_ack(to, nonce);
}

bool SwimAgent::on_msg(const vmmc::Msg& m) {
  if (m.bytes.empty()) return false;
  const std::uint8_t type = m.bytes[0];
  if (type != kPingByte && type != kAckByte && type != kPingReqByte) {
    return false;  // not ours; falls through to the service inbox
  }
  Reader r{m.bytes};
  (void)r.u8();
  const std::uint64_t nonce = r.u64();
  const net::HostId target{r.u32()};
  const std::uint8_t n_updates = r.u8();
  for (std::uint8_t i = 0; i < n_updates && r.ok; ++i) {
    const net::HostId h{r.u32()};
    const auto st = static_cast<MemberState>(r.u8());
    const std::uint32_t inc = r.u32();
    if (!r.ok) break;
    ++stats_.updates_rx;
    apply_update(h, st, inc);
  }
  if (!r.ok) return true;  // claimed but malformed; drop

  switch (type) {
    case kPingByte:
      ++stats_.pings_rx;
      if (cfg_.ack_delay > 0) {
        delayed_ack(m.src, nonce);
      } else {
        send_ack(m.src, nonce);
      }
      break;
    case kAckByte: {
      ++stats_.acks_rx;
      if (auto it = rounds_.find(nonce); it != rounds_.end()) {
        it->second->acked = true;
      } else if (auto rl = relays_.find(nonce); rl != relays_.end()) {
        // Ack for a ping we sent on someone else's behalf: relay it home
        // under the requester's nonce.
        ++stats_.indirect_acks_relayed;
        const Relay rel = rl->second;
        relays_.erase(rl);
        send_ack(rel.requester, rel.nonce);
      }
      break;
    }
    case kPingReqByte: {
      ++stats_.ping_reqs_rx;
      if (target == self()) {
        send_ack(m.src, nonce);  // degenerate: we are the target
        break;
      }
      const std::uint64_t relay_nonce = next_nonce_++;
      relays_[relay_nonce] = Relay{m.src, nonce};
      ++stats_.pings_tx;
      post_msg(target, encode_msg(kPingByte, relay_nonce, target, target));
      break;
    }
    default:
      break;
  }
  return true;
}

}  // namespace sanfault::membership
