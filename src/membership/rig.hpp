// SwimRig: a cluster running nothing but membership — one vmmc::Endpoint +
// MsgEndpoint + SwimAgent per host, fully meshed. The standalone harness for
// the failure-detector experiments (tests/membership_test.cpp,
// bench/bench_membership.cpp); service deployments get the same wiring from
// kv::KvRig with cfg.membership instead.
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <vector>

#include "harness/cluster.hpp"
#include "membership/fault_domains.hpp"
#include "membership/swim.hpp"
#include "sim/process.hpp"
#include "vmmc/endpoint.hpp"
#include "vmmc/rpc.hpp"

namespace sanfault::membership {

struct SwimRigConfig {
  harness::ClusterConfig cluster;
  SwimConfig swim;
  /// Gossip messages are tiny; a small per-sender ring partition keeps the
  /// n^2 ring memory of a full mesh affordable at clos-128 scale.
  std::size_t ring_per_peer = 4 * 1024;
  /// Per-host config tweak (host index, config) — e.g. give one member an
  /// ack_delay to model a processing-bound host.
  std::function<void(std::size_t, SwimConfig&)> tweak;
  /// Wire each agent's confirm hook to ReliableFirmware::exclude_peer, the
  /// production integration (requires reliable firmware).
  bool wire_exclusion = true;
};

class SwimRig {
 public:
  explicit SwimRig(SwimRigConfig cfg) : cfg_(std::move(cfg)), c(cfg_.cluster) {
    const std::size_t n = c.size();
    domains = FaultDomainTree::from_pods(c.host_pods);
    for (std::size_t i = 0; i < n; ++i) {
      eps.push_back(std::make_unique<vmmc::Endpoint>(c.sched, c.nic(i)));
      msgs.push_back(std::make_unique<vmmc::MsgEndpoint>(
          c.sched, *eps.back(), cfg_.ring_per_peer, /*max_peers=*/n));
    }
    connect_mesh();
    for (std::size_t i = 0; i < n; ++i) {
      SwimConfig s = cfg_.swim;
      if (cfg_.tweak) cfg_.tweak(i, s);
      agents.push_back(
          std::make_unique<SwimAgent>(c.sched, *msgs[i], c.hosts, s));
      if (cfg_.wire_exclusion &&
          c.config().fw == harness::FirmwareKind::kReliable) {
        agents.back()->set_confirm_hook([this, i](net::HostId dead, sim::Time) {
          c.rel(i).exclude_peer(dead);
        });
      }
    }
    for (auto& a : agents) a->start();
  }

  [[nodiscard]] SwimAgent& agent(std::size_t i) { return *agents.at(i); }

  /// True once every agent other than `dead_idx` has confirmed that host.
  [[nodiscard]] bool all_confirmed(std::size_t dead_idx) const {
    for (std::size_t i = 0; i < agents.size(); ++i) {
      if (i == dead_idx) continue;
      if (!agents[i]->confirmed_dead(c.hosts[dead_idx])) return false;
    }
    return true;
  }

  SwimRigConfig cfg_;
  harness::Cluster c;
  FaultDomainTree domains;
  std::vector<std::unique_ptr<vmmc::Endpoint>> eps;
  std::vector<std::unique_ptr<vmmc::MsgEndpoint>> msgs;
  std::vector<std::unique_ptr<SwimAgent>> agents;

 private:
  void connect_mesh() {
    bool done = false;
    [](SwimRig& r, bool& flag) -> sim::Process {
      const std::size_t n = r.c.size();
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          if (i == j) continue;
          const bool ok = co_await r.msgs[i]->connect(r.c.hosts[j]);
          assert(ok);
          (void)ok;
        }
      }
      flag = true;
    }(*this, done);
    while (!done && c.sched.step()) {
    }
    assert(done && "gossip mesh connect did not complete");
  }
};

}  // namespace sanfault::membership
