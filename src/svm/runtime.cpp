#include "svm/runtime.hpp"

#include <algorithm>
#include <cassert>

#include "sim/process.hpp"

namespace sanfault::svm {

namespace {
constexpr std::uint64_t kKindShift = 56;
constexpr std::uint64_t kProcShift = 48;
constexpr std::uint64_t kAShift = 32;
}  // namespace

// --------------------------------------------------------------------------
// Tags and wait keys
// --------------------------------------------------------------------------

std::uint64_t Runtime::tag_of(Msg m, std::uint32_t a, std::uint32_t b,
                              std::uint32_t proc) {
  return (static_cast<std::uint64_t>(m) << kKindShift) |
         (static_cast<std::uint64_t>(proc & 0xFF) << kProcShift) |
         (static_cast<std::uint64_t>(a & 0xFFFF) << kAShift) | b;
}

std::uint64_t Runtime::wait_key(Msg m, std::uint32_t a, std::uint32_t b,
                                std::uint32_t proc) {
  return tag_of(m, a, b, proc);
}

// --------------------------------------------------------------------------
// Construction / endpoint plumbing
// --------------------------------------------------------------------------

Runtime::Runtime(harness::Cluster& cluster, SvmConfig cfg, int procs_per_node)
    : cluster_(cluster), cfg_(cfg) {
  nodes_.resize(cluster_.size());
  int id = 0;
  for (std::size_t n = 0; n < cluster_.size(); ++n) {
    for (int p = 0; p < procs_per_node; ++p) {
      procs_.push_back(std::make_unique<Proc>(*this, id++, n));
    }
  }
  barrier_waits_.assign(procs_.size(), nullptr);
  setup_endpoints();
}

Runtime::~Runtime() {
  // Dispatcher coroutines hold references into this Runtime; detach the NIC
  // callbacks so no late traffic reaches freed endpoints.
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    cluster_.nic(n).set_host_rx({});
  }
}

void Runtime::setup_endpoints() {
  auto& sched = cluster_.sched;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    auto& st = nodes_[n];
    st.ep = std::make_unique<vmmc::Endpoint>(sched, cluster_.nic(n));
    st.ctrl = st.ep->export_buffer(256);
    st.pages = st.ep->export_buffer(cfg_.page_bytes);
    st.ctrl_imp.resize(nodes_.size());
    st.pages_imp.resize(nodes_.size());
  }
  // Exchange imports; exports already exist, so the handshakes can run
  // concurrently. Drive the scheduler until every import resolves.
  int pending = 0;
  auto import_all = [&](std::size_t i, std::size_t j) -> sim::Process {
    auto ci = co_await nodes_[i].ep->import(cluster_.hosts[j], nodes_[j].ctrl);
    auto pi = co_await nodes_[i].ep->import(cluster_.hosts[j], nodes_[j].pages);
    nodes_[i].ctrl_imp[j] = *ci;
    nodes_[i].pages_imp[j] = *pi;
    --pending;
  };
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (std::size_t j = 0; j < nodes_.size(); ++j) {
      if (i == j) continue;
      ++pending;
      import_all(i, j);
    }
  }
  const sim::Time deadline = sched.now() + sim::seconds(300);
  while (pending > 0 && sched.now() < deadline && sched.step()) {
  }
  assert(pending == 0 && "SVM endpoint setup did not converge");
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    dispatcher(n);
  }
  setup_done_ = true;
}

RegionId Runtime::create_region(std::size_t bytes) {
  RegionRec rec;
  rec.data.assign(bytes, 0);
  rec.num_pages = static_cast<std::uint32_t>(
      (bytes + cfg_.page_bytes - 1) / cfg_.page_bytes);
  rec.valid.assign(nodes_.size() * rec.num_pages, false);
  regions_.push_back(std::move(rec));
  return static_cast<RegionId>(regions_.size() - 1);
}

std::span<std::uint8_t> Runtime::region_data(RegionId r) {
  return regions_.at(r).data;
}

std::size_t Runtime::home_of_page(RegionId r, std::uint32_t page) const {
  // Block distribution: contiguous chunks of pages per node, as SPLASH-style
  // partitions expect (processor i's slice is mostly homed on its node).
  const auto& reg = regions_.at(r);
  const std::uint32_t per_node = std::max<std::uint32_t>(
      1, (reg.num_pages + static_cast<std::uint32_t>(nodes_.size()) - 1) /
             static_cast<std::uint32_t>(nodes_.size()));
  return std::min<std::size_t>(page / per_node, nodes_.size() - 1);
}

// --------------------------------------------------------------------------
// Messaging
// --------------------------------------------------------------------------

sim::Task<void> Runtime::send_msg(std::size_t from_node, std::size_t to_node,
                                  Msg m, std::uint32_t a, std::uint32_t b,
                                  std::uint32_t proc,
                                  std::size_t payload_bytes) {
  assert(from_node != to_node && "local messages take the shortcut path");
  auto& st = nodes_[from_node];
  const std::uint64_t tag = tag_of(m, a, b, proc);
  std::vector<std::uint8_t> payload;
  if (payload_bytes > 0) {
    // Page traffic carries the real bytes (CRC and corruption-recovery act
    // on genuine content).
    const auto& reg = regions_.at(a);
    const std::size_t off = static_cast<std::size_t>(b) * cfg_.page_bytes;
    const std::size_t n = std::min(payload_bytes, reg.data.size() - off);
    payload.assign(reg.data.begin() + static_cast<std::ptrdiff_t>(off),
                   reg.data.begin() + static_cast<std::ptrdiff_t>(off + n));
  }
  const auto& imp = payload_bytes > 0 ? st.pages_imp[to_node]
                                      : st.ctrl_imp[to_node];
  co_await st.ep->send(imp, 0, std::move(payload), tag);
}

// NOTE: pump_export is a plain member coroutine, NOT a capturing lambda — a
// lambda coroutine's captures live in the lambda object and dangle once it
// is destroyed; member-function parameters are copied into the frame.
sim::Process Runtime::pump_export(std::size_t node, vmmc::ExportId exp) {
  auto& ch = nodes_[node].ep->notifications(exp);
  for (;;) {
    vmmc::DepositEvent ev = co_await ch.pop(cluster_.sched);
    handle_msg(node, ev);
  }
}

void Runtime::dispatcher(std::size_t node) {
  // Two inbound streams (control and page deposits), one pump each;
  // handlers run as detached processes.
  pump_export(node, nodes_[node].ctrl);
  pump_export(node, nodes_[node].pages);
}

sim::Process Runtime::handle_msg(std::size_t node, vmmc::DepositEvent ev) {
  auto& sched = cluster_.sched;
  // Protocol handler time on the host CPU (GeNIMA's synchronous handlers).
  co_await sim::DelayFor{sched, cfg_.handler_op};

  const auto kind = static_cast<Msg>(ev.tag >> kKindShift);
  const auto proc = static_cast<std::uint32_t>((ev.tag >> kProcShift) & 0xFF);
  const auto a = static_cast<std::uint32_t>((ev.tag >> kAShift) & 0xFFFF);
  const auto b = static_cast<std::uint32_t>(ev.tag & 0xFFFFFFFF);
  const std::size_t src_node = ev.src.v;  // hosts are created in order

  switch (kind) {
    case Msg::kPageReq: {
      // We are the home: ship the page back to the requester's node.
      co_await send_msg(node, src_node, Msg::kPageData, a, b, proc,
                        cfg_.page_bytes);
      break;
    }
    case Msg::kPageData:
    case Msg::kWbAck:
    case Msg::kLockGrant:
    case Msg::kBarrierRelease: {
      auto& waits = nodes_[node].waits;
      auto it = waits.find(wait_key(kind, a, b, proc));
      if (it != waits.end()) {
        sim::Trigger* t = it->second;
        waits.erase(it);
        t->fire(sched);
      }
      break;
    }
    case Msg::kPageWb: {
      // Canonical data is authoritative already; acknowledge completion.
      co_await send_msg(node, src_node, Msg::kWbAck, a, b, proc, 0);
      break;
    }
    case Msg::kLockReq: {
      LockRec& l = locks_[a];
      const std::uint64_t who = (static_cast<std::uint64_t>(src_node) << 16) | proc;
      if (!l.held) {
        l.held = true;
        co_await send_msg(node, src_node, Msg::kLockGrant, a, 0, proc, 0);
      } else {
        l.queue.push_back(who);
      }
      break;
    }
    case Msg::kUnlock: {
      LockRec& l = locks_[a];
      if (l.queue.empty()) {
        l.held = false;
      } else {
        const std::uint64_t who = l.queue.front();
        l.queue.pop_front();
        const auto wnode = static_cast<std::size_t>(who >> 16);
        const auto wproc = static_cast<std::uint32_t>(who & 0xFFFF);
        if (wnode == node) {
          auto& waits = nodes_[node].waits;
          auto it = waits.find(wait_key(Msg::kLockGrant, a, 0, wproc));
          if (it != waits.end()) {
            sim::Trigger* t = it->second;
            waits.erase(it);
            t->fire(sched);
          }
        } else {
          co_await send_msg(node, wnode, Msg::kLockGrant, a, 0, wproc, 0);
        }
      }
      break;
    }
    case Msg::kBarrierArrive: {
      assert(node == 0);
      co_await barrier_arrive(static_cast<int>(proc));
      break;
    }
    default:
      break;
  }
}

sim::Task<void> Runtime::barrier_arrive(int proc_id) {
  (void)proc_id;
  auto& sched = cluster_.sched;
  if (++barrier_count_ < static_cast<int>(procs_.size())) co_return;
  // Everyone arrived: invalidate all cached copies, bump the generation,
  // release the world.
  barrier_count_ = 0;
  ++barrier_gen_;
  ++stats_.barriers;
  for (auto& reg : regions_) {
    std::fill(reg.valid.begin(), reg.valid.end(), false);
  }
  for (auto& p : procs_) {
    const auto pid = static_cast<std::uint32_t>(p->id());
    if (p->node() == 0) {
      if (barrier_waits_[p->id()] != nullptr) {
        sim::Trigger* t = barrier_waits_[static_cast<std::size_t>(p->id())];
        barrier_waits_[static_cast<std::size_t>(p->id())] = nullptr;
        t->fire(sched);
      }
    } else {
      co_await send_msg(0, p->node(), Msg::kBarrierRelease, 0, 0, pid, 0);
    }
  }
}

// --------------------------------------------------------------------------
// Proc operations
// --------------------------------------------------------------------------

sim::Task<void> Proc::compute(sim::Duration ns) {
  const sim::Time t0 = rt_.cluster_.sched.now();
  co_await sim::DelayFor{rt_.cluster_.sched, ns};
  times_.compute += rt_.cluster_.sched.now() - t0;
}

sim::Task<std::span<std::uint8_t>> Proc::acquire(RegionId r,
                                                 std::size_t offset,
                                                 std::size_t len) {
  auto& sched = rt_.cluster_.sched;
  const sim::Time t0 = sched.now();
  auto& reg = rt_.regions_.at(r);
  const std::size_t pb = rt_.cfg_.page_bytes;
  const auto p0 = static_cast<std::uint32_t>(offset / pb);
  const auto p1 = static_cast<std::uint32_t>(
      len == 0 ? p0 : (offset + len - 1) / pb);

  // Pipelined fetch: post every request, then collect every page.
  struct Fetch {
    std::uint32_t page;
    sim::Trigger done;
  };
  std::vector<std::unique_ptr<Fetch>> fetches;
  for (std::uint32_t p = p0; p <= p1 && p < reg.num_pages; ++p) {
    const std::size_t home = rt_.home_of_page(r, p);
    const std::size_t vidx = node_ * reg.num_pages + p;
    if (home == node_ || reg.valid[vidx]) {
      ++rt_.stats_.local_page_hits;
      continue;
    }
    ++rt_.stats_.page_fetches;
    auto f = std::make_unique<Fetch>();
    f->page = p;
    rt_.nodes_[node_].waits[Runtime::wait_key(
        Runtime::Msg::kPageData, r, p, static_cast<std::uint32_t>(id_))] =
        &f->done;
    fetches.push_back(std::move(f));
    co_await rt_.send_msg(node_, home, Runtime::Msg::kPageReq, r, p,
                          static_cast<std::uint32_t>(id_), 0);
  }
  for (auto& f : fetches) {
    co_await f->done.wait(sched);
    reg.valid[node_ * reg.num_pages + f->page] = true;
  }
  if (fetches.empty()) {
    co_await sim::DelayFor{sched, rt_.cfg_.local_op};
  }
  times_.data += sched.now() - t0;
  const std::size_t end = std::min(offset + len, reg.data.size());
  co_return std::span<std::uint8_t>(reg.data.data() + offset, end - offset);
}

void Proc::mark_dirty(RegionId r, std::size_t offset, std::size_t len) {
  const std::size_t pb = rt_.cfg_.page_bytes;
  const auto p0 = static_cast<std::uint32_t>(offset / pb);
  const auto p1 =
      static_cast<std::uint32_t>(len == 0 ? p0 : (offset + len - 1) / pb);
  auto& pages = dirty_[r];
  for (std::uint32_t p = p0; p <= p1; ++p) {
    if (std::find(pages.begin(), pages.end(), p) == pages.end()) {
      pages.push_back(p);
    }
  }
}

sim::Task<void> Proc::release() {
  auto& sched = rt_.cluster_.sched;
  const sim::Time t0 = sched.now();
  struct Wb {
    sim::Trigger done;
  };
  std::vector<std::unique_ptr<Wb>> acks;
  for (auto& [r, pages] : dirty_) {
    for (std::uint32_t p : pages) {
      const std::size_t home = rt_.home_of_page(r, p);
      if (home == node_) continue;  // writes to home-local pages are free
      ++rt_.stats_.write_backs;
      auto wb = std::make_unique<Wb>();
      rt_.nodes_[node_].waits[Runtime::wait_key(
          Runtime::Msg::kWbAck, r, p, static_cast<std::uint32_t>(id_))] =
          &wb->done;
      acks.push_back(std::move(wb));
      co_await rt_.send_msg(node_, home, Runtime::Msg::kPageWb, r, p,
                            static_cast<std::uint32_t>(id_),
                            rt_.cfg_.page_bytes);
    }
  }
  dirty_.clear();
  for (auto& wb : acks) {
    co_await wb->done.wait(sched);
  }
  times_.data += sched.now() - t0;
}

sim::Task<void> Proc::barrier() {
  co_await release();
  auto& sched = rt_.cluster_.sched;
  const sim::Time t0 = sched.now();
  sim::Trigger done;
  if (node_ == 0) {
    rt_.barrier_waits_[static_cast<std::size_t>(id_)] = &done;
    co_await sim::DelayFor{sched, rt_.cfg_.local_op};
    co_await rt_.barrier_arrive(id_);
  } else {
    rt_.nodes_[node_].waits[Runtime::wait_key(
        Runtime::Msg::kBarrierRelease, 0, 0,
        static_cast<std::uint32_t>(id_))] = &done;
    co_await rt_.send_msg(node_, 0, Runtime::Msg::kBarrierArrive, 0, 0,
                          static_cast<std::uint32_t>(id_), 0);
  }
  co_await done.wait(sched);
  times_.barrier += sched.now() - t0;
}

sim::Task<void> Proc::lock(std::uint32_t lock_id) {
  auto& sched = rt_.cluster_.sched;
  const sim::Time t0 = sched.now();
  ++rt_.stats_.lock_requests;
  const std::size_t home = lock_id % rt_.nodes_.size();
  if (home == node_) {
    co_await sim::DelayFor{sched, rt_.cfg_.local_op};
    Runtime::LockRec& l = rt_.locks_[lock_id];
    if (!l.held) {
      l.held = true;
    } else {
      sim::Trigger done;
      rt_.nodes_[node_].waits[Runtime::wait_key(
          Runtime::Msg::kLockGrant, lock_id, 0,
          static_cast<std::uint32_t>(id_))] = &done;
      l.queue.push_back((static_cast<std::uint64_t>(node_) << 16) |
                        static_cast<std::uint32_t>(id_));
      co_await done.wait(sched);
    }
  } else {
    ++rt_.stats_.remote_lock_requests;
    sim::Trigger done;
    rt_.nodes_[node_].waits[Runtime::wait_key(
        Runtime::Msg::kLockGrant, lock_id, 0,
        static_cast<std::uint32_t>(id_))] = &done;
    co_await rt_.send_msg(node_, home, Runtime::Msg::kLockReq, lock_id, 0,
                          static_cast<std::uint32_t>(id_), 0);
    co_await done.wait(sched);
  }
  times_.lock += sched.now() - t0;
}

sim::Task<void> Proc::unlock(std::uint32_t lock_id) {
  auto& sched = rt_.cluster_.sched;
  const sim::Time t0 = sched.now();
  const std::size_t home = lock_id % rt_.nodes_.size();
  if (home == node_) {
    co_await sim::DelayFor{sched, rt_.cfg_.local_op};
    Runtime::LockRec& l = rt_.locks_[lock_id];
    if (l.queue.empty()) {
      l.held = false;
    } else {
      const std::uint64_t who = l.queue.front();
      l.queue.pop_front();
      const auto wnode = static_cast<std::size_t>(who >> 16);
      const auto wproc = static_cast<std::uint32_t>(who & 0xFFFF);
      if (wnode == node_) {
        auto& waits = rt_.nodes_[node_].waits;
        auto it = waits.find(
            Runtime::wait_key(Runtime::Msg::kLockGrant, lock_id, 0, wproc));
        if (it != waits.end()) {
          sim::Trigger* t = it->second;
          waits.erase(it);
          t->fire(sched);
        }
      } else {
        co_await rt_.send_msg(node_, wnode, Runtime::Msg::kLockGrant, lock_id,
                              0, wproc, 0);
      }
    }
  } else {
    co_await rt_.send_msg(node_, home, Runtime::Msg::kUnlock, lock_id, 0,
                          static_cast<std::uint32_t>(id_), 0);
  }
  times_.lock += sched.now() - t0;
}

// --------------------------------------------------------------------------
// Driver
// --------------------------------------------------------------------------

sim::Duration Runtime::run(const std::function<sim::Task<void>(Proc&)>& body) {
  auto& sched = cluster_.sched;
  const sim::Time t0 = sched.now();
  running_ = static_cast<int>(procs_.size());
  auto wrap = [this](Proc& p,
                     const std::function<sim::Task<void>(Proc&)>& b) -> sim::Process {
    co_await b(p);
    --running_;
  };
  for (auto& p : procs_) {
    wrap(*p, body);
  }
  const sim::Time deadline = sched.now() + cfg_.run_cap;
  while (running_ > 0 && sched.now() < deadline && sched.step()) {
  }
  // Callers observe an early return via the elapsed time when the cap hits.
  return sched.now() - t0;
}

}  // namespace sanfault::svm
