// Home-based shared virtual memory runtime (GeNIMA-flavored), the layer the
// paper's SPLASH-2 applications run on (§5.1.4, Figure 9).
//
// Model:
//  * shared *regions* are split into pages, each page statically homed on a
//    node (block distribution);
//  * a processor reads remote-homed pages by fetching them from the home
//    (one request message + one page-sized deposit), valid until the next
//    barrier (release-consistency at barrier granularity);
//  * writes are recorded locally and written back to the home at release /
//    barrier time (page deposit + write-back ack, as GeNIMA's NIC-supported
//    remote deposit with completion does);
//  * locks are home-distributed queue locks (request / grant / unlock
//    messages to the lock's home node);
//  * barriers are centralized on node 0 (arrive / release messages).
//
// All protocol messages are real VMMC deposits riding the simulated NIC and
// fabric, so every SVM operation feels retransmission delays, send-buffer
// pressure, and injected faults exactly as the applications in the paper
// did. Page *contents* travel on the wire for real; the canonical copy of
// each region lives in the Runtime (the simulator is one address space), so
// data-race-free applications compute on real data with exact results.
//
// Time accounting per processor follows Figure 9's categories (timing.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "harness/cluster.hpp"
#include "sim/task.hpp"
#include "svm/timing.hpp"
#include "vmmc/endpoint.hpp"

namespace sanfault::svm {

using RegionId = std::uint16_t;

struct SvmConfig {
  std::size_t page_bytes = 4096;
  /// Node-local protocol shortcut cost (page homed here, local lock, ...).
  sim::Duration local_op = 300;
  /// Charged per protocol handler invocation (runs on the host CPU in
  /// GeNIMA, since the NIC eliminates asynchronous protocol processing).
  sim::Duration handler_op = 500;
  /// Simulated-time cap for Runtime::run (watchdog against deadlocks).
  sim::Duration run_cap = sim::seconds(36000);
};

struct SvmStats {
  std::uint64_t page_fetches = 0;        // remote page fetches
  std::uint64_t local_page_hits = 0;     // valid-or-home-local accesses
  std::uint64_t write_backs = 0;         // dirty pages flushed to homes
  std::uint64_t lock_requests = 0;
  std::uint64_t remote_lock_requests = 0;
  std::uint64_t barriers = 0;
};

class Runtime;

/// One logical processor (the paper runs 2 per node on 4 nodes).
class Proc {
 public:
  Proc(Runtime& rt, int id, std::size_t node) : rt_(rt), id_(id), node_(node) {}

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] std::size_t node() const { return node_; }
  [[nodiscard]] TimeBreakdown& times() { return times_; }

  /// Charge `ns` of computation time.
  sim::Task<void> compute(sim::Duration ns);

  /// Make [offset, offset+len) of the region readable on this node: fetch
  /// every non-valid remote-homed page from its home. Returns a span over
  /// the canonical data.
  sim::Task<std::span<std::uint8_t>> acquire(RegionId r, std::size_t offset,
                                             std::size_t len);

  /// Mark [offset, offset+len) dirty (will be flushed at release/barrier).
  void mark_dirty(RegionId r, std::size_t offset, std::size_t len);

  /// Flush this processor's dirty pages of all regions to their homes and
  /// wait for the write-back acknowledgments (data time).
  sim::Task<void> release();

  /// Global barrier: implies release(), then synchronizes all processors
  /// and invalidates cached page copies (barrier time).
  sim::Task<void> barrier();

  sim::Task<void> lock(std::uint32_t lock_id);
  sim::Task<void> unlock(std::uint32_t lock_id);

 private:
  friend class Runtime;
  Runtime& rt_;
  int id_;
  std::size_t node_;
  TimeBreakdown times_;
  /// Dirty page set, per region, owned by this processor.
  std::map<RegionId, std::vector<std::uint32_t>> dirty_;
};

class Runtime {
 public:
  Runtime(harness::Cluster& cluster, SvmConfig cfg, int procs_per_node);
  ~Runtime();

  /// Create a shared region of `bytes`, pages homed round-robin by block.
  RegionId create_region(std::size_t bytes);

  [[nodiscard]] std::span<std::uint8_t> region_data(RegionId r);
  [[nodiscard]] std::size_t page_bytes() const { return cfg_.page_bytes; }
  [[nodiscard]] std::size_t home_of_page(RegionId r, std::uint32_t page) const;

  [[nodiscard]] int num_procs() const {
    return static_cast<int>(procs_.size());
  }
  [[nodiscard]] Proc& proc(int i) { return *procs_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] const SvmStats& stats() const { return stats_; }
  [[nodiscard]] harness::Cluster& cluster() { return cluster_; }

  /// Run `body(proc)` on every processor to completion, driving the
  /// scheduler. Returns total elapsed simulated time.
  sim::Duration run(const std::function<sim::Task<void>(Proc&)>& body);

 private:
  friend class Proc;

  // Message kinds riding in DepositEvent tags.
  enum class Msg : std::uint8_t {
    kPageReq = 1,
    kPageData,
    kPageWb,
    kWbAck,
    kLockReq,
    kLockGrant,
    kUnlock,
    kBarrierArrive,
    kBarrierRelease,
  };

  struct NodeState {
    std::unique_ptr<vmmc::Endpoint> ep;
    vmmc::ExportId ctrl = 0;   // small protocol messages
    vmmc::ExportId pages = 0;  // page-sized deposits
    /// Imports of every other node's exports, by node index.
    std::vector<vmmc::Endpoint::Import> ctrl_imp;
    std::vector<vmmc::Endpoint::Import> pages_imp;
    /// Pending waits keyed by (kind, region, page/lock id, proc).
    std::map<std::uint64_t, sim::Trigger*> waits;
  };

  struct RegionRec {
    std::vector<std::uint8_t> data;
    std::uint32_t num_pages = 0;
    /// valid[node * num_pages + page]: cached copy valid on that node.
    std::vector<bool> valid;
  };

  struct LockRec {
    bool held = false;
    std::deque<std::uint64_t> queue;  // waiting (node, proc) encodings
  };

  static std::uint64_t tag_of(Msg m, std::uint32_t a, std::uint32_t b,
                              std::uint32_t proc);

  sim::Task<void> send_msg(std::size_t from_node, std::size_t to_node, Msg m,
                           std::uint32_t a, std::uint32_t b,
                           std::uint32_t proc, std::size_t payload_bytes);
  void dispatcher(std::size_t node);
  sim::Process pump_export(std::size_t node, vmmc::ExportId exp);
  sim::Process handle_msg(std::size_t node, vmmc::DepositEvent ev);
  void setup_endpoints();
  /// Wait key for a pending reply.
  static std::uint64_t wait_key(Msg m, std::uint32_t a, std::uint32_t b,
                                std::uint32_t proc);

  /// One processor reached the barrier; the completing arrival invalidates
  /// caches and releases everyone.
  sim::Task<void> barrier_arrive(int proc_id);

  harness::Cluster& cluster_;
  SvmConfig cfg_;
  std::vector<std::unique_ptr<Proc>> procs_;
  std::vector<NodeState> nodes_;
  std::vector<RegionRec> regions_;
  std::map<std::uint32_t, LockRec> locks_;  // homed on lock_id % nodes
  SvmStats stats_;

  // Barrier state (master = node 0).
  std::uint32_t barrier_gen_ = 0;
  int barrier_count_ = 0;
  std::vector<sim::Trigger*> barrier_waits_;  // per proc

  int running_ = 0;
  bool setup_done_ = false;
};

}  // namespace sanfault::svm
