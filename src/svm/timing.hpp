// Per-processor execution-time accounting, in the categories of the paper's
// Figure 9: Barrier Time, Lock Time, Data (wait) Time, and Compute + Handler
// Time.
#pragma once

#include "sim/time.hpp"

namespace sanfault::svm {

struct TimeBreakdown {
  sim::Duration compute = 0;  // charged computation + protocol handler time
  sim::Duration data = 0;     // waiting for remote pages / write-back acks
  sim::Duration lock = 0;     // waiting for lock acquisition
  sim::Duration barrier = 0;  // waiting at barriers

  [[nodiscard]] sim::Duration total() const {
    return compute + data + lock + barrier;
  }

  TimeBreakdown& operator+=(const TimeBreakdown& o) {
    compute += o.compute;
    data += o.data;
    lock += o.lock;
    barrier += o.barrier;
    return *this;
  }
};

}  // namespace sanfault::svm
