// The paper's three micro-benchmarks (§5.1.4), as reusable harness calls:
//  * latency test           — ping-pong round trip / 2;
//  * ping-pong bandwidth    — data bounces between two nodes, one direction
//                             active at a time ("bidirectional" in Fig. 4-8);
//  * unidirectional bandwidth — the sender streams without waiting; measures
//                             how fast data can be put onto the network.
// All three run over VMMC endpoints on hosts 0 and 1 of a Cluster, after an
// untimed warm-up exchange (routes mapped, pools steady).
#pragma once

#include <cstddef>
#include <cstdint>

#include "harness/cluster.hpp"

namespace sanfault::harness {

struct MicrobenchResult {
  double seconds = 0;        // measured simulated time
  std::uint64_t bytes = 0;   // payload bytes counted into the figure
  int iterations = 0;

  [[nodiscard]] double mbytes_per_sec() const {
    return seconds > 0 ? static_cast<double>(bytes) / seconds / 1e6 : 0.0;
  }
  /// One-way latency in microseconds (latency test: RTT/2 per iteration).
  [[nodiscard]] double one_way_us() const {
    return iterations > 0 ? seconds * 1e6 / (2.0 * iterations) : 0.0;
  }
};

/// Ping-pong latency: `iters` round trips of `msg_bytes` each way.
MicrobenchResult run_latency(Cluster& c, std::size_t msg_bytes, int iters);

/// Ping-pong ("bidirectional") bandwidth: counts bytes moved in both
/// directions over the measured window.
MicrobenchResult run_pingpong_bw(Cluster& c, std::size_t msg_bytes, int iters);

/// Unidirectional bandwidth: stream `count` messages of `msg_bytes`;
/// measured at the receiver's last-byte delivery.
MicrobenchResult run_unidirectional_bw(Cluster& c, std::size_t msg_bytes,
                                       int count);

}  // namespace sanfault::harness
