#include "harness/microbench.hpp"

#include <memory>

#include "sim/process.hpp"
#include "vmmc/endpoint.hpp"

namespace sanfault::harness {

namespace {

/// Shared rig: endpoints on hosts 0 and 1, an export on each side large
/// enough for the message, and mutual imports. Built (untimed) before every
/// micro-benchmark.
struct PairRig {
  vmmc::Endpoint a;
  vmmc::Endpoint b;
  vmmc::ExportId exp_a = 0;
  vmmc::ExportId exp_b = 0;
  vmmc::Endpoint::Import a_to_b;  // held by a, deposits into b
  vmmc::Endpoint::Import b_to_a;

  PairRig(Cluster& c, std::size_t msg_bytes)
      : a(c.sched, c.nic(0)), b(c.sched, c.nic(1)) {
    exp_a = a.export_buffer(msg_bytes > 0 ? msg_bytes : 1);
    exp_b = b.export_buffer(msg_bytes > 0 ? msg_bytes : 1);
  }
};

sim::Process setup_imports(Cluster& c, PairRig& rig, bool& ready) {
  auto ia = co_await rig.a.import(c.hosts[1], rig.exp_b);
  auto ib = co_await rig.b.import(c.hosts[0], rig.exp_a);
  rig.a_to_b = *ia;
  rig.b_to_a = *ib;
  ready = true;
}

/// Drive the scheduler until `done` flips (periodic firmware timers keep the
/// event queue non-empty forever, so sched.run() would never return).
void drive_until(Cluster& c, const bool& done,
                 sim::Duration safety = sim::seconds(600)) {
  const sim::Time deadline = c.sched.now() + safety;
  while (!done && c.sched.now() < deadline && c.sched.step()) {
  }
}

struct PingPong {
  sim::Time t0 = 0;
  sim::Time t1 = 0;
  bool done = false;

  static sim::Process run_a(Cluster& c, PairRig& rig, std::size_t bytes,
                            int iters, PingPong& st) {
    auto& pong = rig.a.notifications(rig.exp_a);
    // Warm-up round trip (untimed).
    co_await rig.a.send(rig.a_to_b, 0, std::vector<std::uint8_t>(bytes, 1));
    (void)co_await pong.pop(c.sched);
    st.t0 = c.sched.now();
    for (int i = 0; i < iters; ++i) {
      co_await rig.a.send(rig.a_to_b, 0, std::vector<std::uint8_t>(bytes, 1));
      (void)co_await pong.pop(c.sched);
    }
    st.t1 = c.sched.now();
    st.done = true;
  }

  static sim::Process run_b(Cluster& c, PairRig& rig, std::size_t bytes,
                            int iters, PingPong& st) {
    auto& ping = rig.b.notifications(rig.exp_b);
    for (int i = 0; i < iters + 1; ++i) {  // +1 for the warm-up
      (void)co_await ping.pop(c.sched);
      co_await rig.b.send(rig.b_to_a, 0, std::vector<std::uint8_t>(bytes, 2));
      if (st.done) break;
    }
  }
};

MicrobenchResult run_pingpong(Cluster& c, std::size_t msg_bytes, int iters,
                              bool count_both_directions) {
  PairRig rig(c, msg_bytes);
  bool ready = false;
  setup_imports(c, rig, ready);
  drive_until(c, ready);

  PingPong st;
  PingPong::run_a(c, rig, msg_bytes, iters, st);
  PingPong::run_b(c, rig, msg_bytes, iters, st);
  drive_until(c, st.done);

  // The rig (and its endpoints) dies with this scope; detach the NIC rx
  // callbacks so stray late packets cannot reach freed endpoints.
  c.nic(0).set_host_rx({});
  c.nic(1).set_host_rx({});

  MicrobenchResult r;
  r.seconds = sim::to_seconds(st.t1 - st.t0);
  r.iterations = iters;
  r.bytes = static_cast<std::uint64_t>(msg_bytes) * iters *
            (count_both_directions ? 2 : 1);
  return r;
}

}  // namespace

MicrobenchResult run_latency(Cluster& c, std::size_t msg_bytes, int iters) {
  return run_pingpong(c, msg_bytes, iters, /*count_both_directions=*/false);
}

MicrobenchResult run_pingpong_bw(Cluster& c, std::size_t msg_bytes, int iters) {
  return run_pingpong(c, msg_bytes, iters, /*count_both_directions=*/true);
}

MicrobenchResult run_unidirectional_bw(Cluster& c, std::size_t msg_bytes,
                                       int count) {
  PairRig rig(c, msg_bytes);
  bool ready = false;
  setup_imports(c, rig, ready);
  drive_until(c, ready);

  struct State {
    sim::Time t0 = 0;
    sim::Time t_last = 0;
    bool done = false;
  } st;

  // Receiver: count notifications; stamp the last one (includes warm-up).
  struct Rx {
    static sim::Process run(Cluster& c, PairRig& rig, int count, State& st) {
      auto& inbox = rig.b.notifications(rig.exp_b);
      for (int i = 0; i < count + 1; ++i) {
        auto ev = co_await inbox.pop(c.sched);
        st.t_last = ev.at;
      }
      st.done = true;
    }
  };
  // Sender: one warm-up message, then stream without waiting for replies.
  struct Tx {
    static sim::Process run(Cluster& c, PairRig& rig, std::size_t bytes,
                            int count, State& st) {
      co_await rig.a.send(rig.a_to_b, 0, std::vector<std::uint8_t>(bytes, 1));
      st.t0 = c.sched.now();
      for (int i = 0; i < count; ++i) {
        co_await rig.a.send(rig.a_to_b, 0, std::vector<std::uint8_t>(bytes, 1));
      }
    }
  };
  Rx::run(c, rig, count, st);
  Tx::run(c, rig, msg_bytes, count, st);
  drive_until(c, st.done);

  c.nic(0).set_host_rx({});
  c.nic(1).set_host_rx({});

  MicrobenchResult r;
  r.seconds = sim::to_seconds(st.t_last - st.t0);
  r.iterations = count;
  r.bytes = static_cast<std::uint64_t>(msg_bytes) * count;
  return r;
}

}  // namespace sanfault::harness
