// PacketTrace: a bounded in-memory wire-event recorder for debugging and
// analysis. Attach it to a Fabric and every delivery and drop is logged with
// simulated timestamp, endpoints, packet type, sequence/generation, and drop
// reason; dump() renders a human-readable timeline, and the per-type
// counters make protocol behavior assertions easy in tests.
//
//   harness::PacketTrace trace(cluster.fabric(), cluster.sched);
//   ... run ...
//   trace.dump(stderr);                       // timeline
//   trace.count(net::PacketType::kAck);       // how many ACKs delivered
#pragma once

#include <cstdio>
#include <deque>
#include <map>
#include <string>

#include "net/fabric.hpp"
#include "sim/scheduler.hpp"

namespace sanfault::harness {

class PacketTrace {
 public:
  struct Event {
    sim::Time at = 0;
    bool dropped = false;
    net::DropReason reason = net::DropReason::kMisroute;  // if dropped
    net::HostId src;
    net::HostId dst;  // actual receiver for deliveries; header dst for drops
    net::PacketType type = net::PacketType::kData;
    std::uint32_t seq = 0;
    std::uint32_t ack = 0;
    std::uint16_t generation = 0;
    std::uint8_t flags = 0;
    std::size_t payload_bytes = 0;
  };

  /// Records at most `capacity` events (oldest evicted first).
  PacketTrace(net::Fabric& fabric, sim::Scheduler& sched,
              std::size_t capacity = 4096)
      : fabric_(fabric), sched_(sched), capacity_(capacity) {
    fabric_.set_delivery_hook([this](const net::Packet& p, net::HostId dst) {
      record(p, dst, /*dropped=*/false, net::DropReason::kMisroute);
    });
    fabric_.set_drop_hook([this](const net::Packet& p, net::DropReason r) {
      record(p, p.hdr.dst, /*dropped=*/true, r);
    });
  }

  ~PacketTrace() {
    fabric_.set_delivery_hook({});
    fabric_.set_drop_hook({});
  }

  PacketTrace(const PacketTrace&) = delete;
  PacketTrace& operator=(const PacketTrace&) = delete;

  [[nodiscard]] const std::deque<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t total_recorded() const { return total_; }

  /// Delivered packets of one type seen so far (drops excluded).
  [[nodiscard]] std::uint64_t count(net::PacketType t) const {
    auto it = delivered_by_type_.find(t);
    return it == delivered_by_type_.end() ? 0 : it->second;
  }
  [[nodiscard]] std::uint64_t drops() const { return drops_; }

  static const char* type_name(net::PacketType t) {
    switch (t) {
      case net::PacketType::kData: return "DATA";
      case net::PacketType::kAck: return "ACK";
      case net::PacketType::kProbeHost: return "PROBE_H";
      case net::PacketType::kProbeSwitch: return "PROBE_S";
      case net::PacketType::kProbeReply: return "PROBE_R";
      case net::PacketType::kControl: return "CTRL";
    }
    return "?";
  }

  static const char* reason_name(net::DropReason r) {
    switch (r) {
      case net::DropReason::kLinkDown: return "link-down";
      case net::DropReason::kSwitchDead: return "switch-dead";
      case net::DropReason::kMisroute: return "misroute";
      case net::DropReason::kRandomLoss: return "loss";
      case net::DropReason::kPathReset: return "path-reset";
      case net::DropReason::kNotAttached: return "unattached";
    }
    return "?";
  }

  /// Render the retained window as one line per event.
  void dump(std::FILE* out = stderr) const {
    for (const Event& e : events_) {
      if (e.dropped) {
        std::fprintf(out, "%12.3f us  DROP %-8s %u->%u seq=%u gen=%u (%s)\n",
                     sim::to_micros(e.at), type_name(e.type), e.src.v, e.dst.v,
                     e.seq, e.generation, reason_name(e.reason));
      } else {
        std::fprintf(out,
                     "%12.3f us  %-8s %u->%u seq=%u ack=%u gen=%u %zuB%s%s\n",
                     sim::to_micros(e.at), type_name(e.type), e.src.v, e.dst.v,
                     e.seq, e.ack, e.generation, e.payload_bytes,
                     (e.flags & net::kFlagRetransmit) ? " RETX" : "",
                     (e.flags & net::kFlagAckRequest) ? " REQ" : "");
      }
    }
  }

 private:
  void record(const net::Packet& p, net::HostId dst, bool dropped,
              net::DropReason reason) {
    Event e;
    e.at = sched_.now();
    e.dropped = dropped;
    e.reason = reason;
    e.src = p.hdr.src;
    e.dst = dst;
    e.type = p.hdr.type;
    e.seq = p.hdr.seq;
    e.ack = p.hdr.ack;
    e.generation = p.hdr.generation;
    e.flags = p.hdr.flags;
    e.payload_bytes = p.payload.size();
    events_.push_back(e);
    if (events_.size() > capacity_) events_.pop_front();
    ++total_;
    if (dropped) {
      ++drops_;
    } else {
      ++delivered_by_type_[p.hdr.type];
    }
  }

  net::Fabric& fabric_;
  sim::Scheduler& sched_;
  std::size_t capacity_;
  std::deque<Event> events_;
  std::map<net::PacketType, std::uint64_t> delivered_by_type_;
  std::uint64_t drops_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace sanfault::harness
