// Cluster: one-stop experiment rig.
//
// Builds a complete simulated cluster — topology, fabric, one NIC per host,
// and a firmware (reliable or raw) per NIC — from a single config struct.
// Tests, benchmarks and examples all use this, so every experiment in
// EXPERIMENTS.md is reproducible from a handful of knobs that map 1:1 onto
// the paper's Table 1.
#pragma once

#include <algorithm>
#include <cassert>
#include <memory>
#include <vector>

#include "firmware/mapper_full.hpp"
#include "firmware/mapper_ondemand.hpp"
#include "firmware/raw.hpp"
#include "firmware/reliability.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "nic/nic.hpp"
#include "sim/awaitables.hpp"
#include "sim/scheduler.hpp"

namespace sanfault::harness {

enum class FirmwareKind {
  kRaw,       // the paper's "No Fault Tolerance" baseline
  kReliable,  // the paper's retransmission protocol
};

enum class TopoKind {
  kSingleSwitch,  // all hosts on one crossbar (micro-benchmark setup)
  kFigure2,       // the paper's 4-switch redundant tree (mapping setup)
  kClos,          // k-ary fat-tree scale-out fabric (64/128-host experiments)
};

enum class MapperKind {
  kNone,      // static routes only; permanent failure => unreachable
  kOnDemand,  // the paper's lazy BFS probing scheme (§4.2)
  kFull,      // full-network remap + UP*/DOWN* baseline
};

struct ClusterConfig {
  std::size_t num_hosts = 2;
  FirmwareKind fw = FirmwareKind::kReliable;
  TopoKind topo = TopoKind::kSingleSwitch;
  nic::NicConfig nic;
  firmware::ReliabilityConfig rel;
  net::FabricConfig fabric;
  MapperKind mapper = MapperKind::kNone;
  firmware::OnDemandMapperConfig ondemand;
  firmware::FullMapperConfig full;
  /// TopoKind::kClos shape; its num_hosts is overridden by `num_hosts` above
  /// so every topology kind is sized by the same knob.
  net::ClosConfig clos;
  /// Preload full shortest routes into every route table (the static-map
  /// baseline). Disable to start with empty tables for on-demand mapping.
  bool preload_routes = true;
};

/// A message as the host library (or application) receives it.
struct HostMsg {
  sim::Time at = 0;
  net::UserHeader user;
  net::PayloadRef payload;
  net::HostId src;
};

/// Topology plus the id/pod bookkeeping every rig needs. Shared by Cluster
/// (serial) and ParallelCluster (partitioned), so both engines always run
/// the exact same wiring for a given config — a precondition for the
/// serial-vs-parallel equivalence battery.
struct BuiltTopology {
  net::Topology topo;
  std::vector<net::HostId> hosts;
  std::vector<net::SwitchId> switches;
  std::vector<std::uint32_t> host_pods;
  std::size_t num_pods = 1;
};

inline BuiltTopology build_cluster_topology(const ClusterConfig& cfg) {
  BuiltTopology b;
  if (cfg.topo == TopoKind::kSingleSwitch) {
    auto sw = b.topo.add_switch(static_cast<std::uint8_t>(
        std::min<std::size_t>(cfg.num_hosts + 2, 250)));
    b.switches.push_back(sw);
    for (std::size_t i = 0; i < cfg.num_hosts; ++i) {
      auto h = b.topo.add_host();
      b.topo.connect({net::Device::host(h), 0},
                     {net::Device::sw(sw), static_cast<std::uint8_t>(i)});
      b.hosts.push_back(h);
    }
    b.host_pods.assign(b.hosts.size(), 0);
    b.num_pods = 1;
  } else if (cfg.topo == TopoKind::kClos) {
    auto clos = cfg.clos;
    clos.num_hosts = cfg.num_hosts;
    auto f = net::make_clos_fabric(clos);
    b.topo = std::move(f.topo);
    b.hosts = std::move(f.hosts);
    // Creation order (switches[i].v == i): cores, then per pod the aggs
    // followed by the edges.
    b.switches = std::move(f.cores);
    const std::size_t m = f.cfg.k / 2;
    for (std::size_t pod = 0; pod < f.cfg.k; ++pod) {
      for (std::size_t j = 0; j < m; ++j) {
        b.switches.push_back(f.aggs[pod * m + j]);
      }
      for (std::size_t e = 0; e < m; ++e) {
        b.switches.push_back(f.edges[pod * m + e]);
      }
    }
    // Host i hangs off edge (i mod num_edges); edges are pod-major, m per
    // pod — so pods stripe across consecutive host ids.
    const std::size_t num_edges = f.edges.size();
    for (std::size_t i = 0; i < b.hosts.size(); ++i) {
      b.host_pods.push_back(static_cast<std::uint32_t>((i % num_edges) / m));
    }
    b.num_pods = f.cfg.k;
  } else {
    auto f = net::make_figure2_fabric(cfg.num_hosts);
    b.topo = std::move(f.topo);
    b.hosts = std::move(f.hosts);
    b.switches = {f.sw8_a, f.sw16_a, f.sw16_b, f.sw8_b};
    // Domain = the leaf switch the host is cabled into (round-robin with
    // port-full skipping — read it back from the built topology).
    for (const net::HostId h : b.hosts) {
      auto att = b.topo.peer_of({net::Device::host(h), 0});
      assert(att.has_value());
      const net::SwitchId sw = att->peer.dev.as_switch();
      const auto it = std::find(b.switches.begin(), b.switches.end(), sw);
      b.host_pods.push_back(
          static_cast<std::uint32_t>(it - b.switches.begin()));
    }
    b.num_pods = b.switches.size();
  }
  return b;
}

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg) : cfg_(std::move(cfg)) {
    build_topology();
    fabric_ = std::make_unique<net::Fabric>(sched, topo, cfg_.fabric);
    inboxes_.resize(hosts.size());
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      nics_.push_back(
          std::make_unique<nic::Nic>(sched, *fabric_, hosts[i], cfg_.nic));
      if (cfg_.fw == FirmwareKind::kReliable) {
        rel_.push_back(
            std::make_unique<firmware::ReliableFirmware>(*nics_.back(), cfg_.rel));
        if (cfg_.preload_routes) rel_.back()->routes().populate_all(topo, hosts[i]);
        if (cfg_.mapper == MapperKind::kOnDemand) {
          auto od = cfg_.ondemand;
          if (od.radix_oracle == nullptr) od.radix_oracle = &topo;
          mappers_.push_back(std::make_unique<firmware::OnDemandMapper>(
              *nics_.back(), od));
          rel_.back()->set_mapper(mappers_.back().get());
          // Preloaded rigs never probe before the first failure, so the
          // mapper's cache would be cold and the first on_path_failure would
          // find no backup to promote. Seed the cache (and its proactive
          // backups) from the same routes the tables were preloaded with.
          if (cfg_.preload_routes && od.proactive_backup) {
            for (const net::HostId other : hosts) {
              if (other == hosts[i]) continue;
              if (auto r = topo.shortest_route(hosts[i], other)) {
                mappers_.back()->seed_cache(other, *r);
              }
            }
          }
        } else if (cfg_.mapper == MapperKind::kFull) {
          full_mappers_.push_back(std::make_unique<firmware::FullMapper>(
              *nics_.back(), topo, cfg_.full));
          rel_.back()->set_mapper(full_mappers_.back().get());
        }
      } else {
        raw_.push_back(std::make_unique<firmware::RawFirmware>(*nics_.back()));
        if (cfg_.preload_routes) raw_.back()->routes().populate_all(topo, hosts[i]);
      }
      inboxes_[i] = std::make_unique<sim::Channel<HostMsg>>();
      nics_[i]->set_host_rx(
          [this, i](net::UserHeader u, net::PayloadRef p, net::HostId src) {
            inboxes_[i]->push(sched,
                              HostMsg{sched.now(), u, std::move(p), src});
          });
    }
  }

  [[nodiscard]] std::size_t size() const { return hosts.size(); }
  [[nodiscard]] net::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] nic::Nic& nic(std::size_t i) { return *nics_.at(i); }
  [[nodiscard]] sim::Channel<HostMsg>& inbox(std::size_t i) {
    return *inboxes_.at(i);
  }
  [[nodiscard]] firmware::ReliableFirmware& rel(std::size_t i) {
    assert(cfg_.fw == FirmwareKind::kReliable);
    return *rel_.at(i);
  }
  [[nodiscard]] firmware::RawFirmware& raw(std::size_t i) {
    assert(cfg_.fw == FirmwareKind::kRaw);
    return *raw_.at(i);
  }
  [[nodiscard]] firmware::RouteTable& routes(std::size_t i) {
    return cfg_.fw == FirmwareKind::kReliable ? rel_.at(i)->routes()
                                              : raw_.at(i)->routes();
  }
  [[nodiscard]] firmware::OnDemandMapper& mapper(std::size_t i) {
    assert(cfg_.mapper == MapperKind::kOnDemand);
    return *mappers_.at(i);
  }
  [[nodiscard]] firmware::FullMapper& full_mapper(std::size_t i) {
    assert(cfg_.mapper == MapperKind::kFull);
    return *full_mappers_.at(i);
  }
  [[nodiscard]] const ClusterConfig& config() const { return cfg_; }

  /// Convenience: submit a payload from host `from` to host `to`.
  void send(std::size_t from, std::size_t to,
            std::vector<std::uint8_t> payload, net::UserHeader user = {},
            std::function<void()> on_accepted = {}) {
    nic::SendRequest req;
    req.dst = hosts.at(to);
    req.user = user;
    req.payload = std::move(payload);
    nics_.at(from)->host_submit(std::move(req), std::move(on_accepted));
  }

  sim::Scheduler sched;
  net::Topology topo;
  std::vector<net::HostId> hosts;
  /// Populated for kFigure2 and kClos (creation order; kClos puts the spine
  /// switches first — see net::ClosFabric).
  std::vector<net::SwitchId> switches;
  /// Fault-domain (pod) ordinal per host, parallel to `hosts` — the input to
  /// membership::FaultDomainTree and pod-aware shard placement. kClos: the
  /// fat-tree pod. kFigure2: the leaf switch the host hangs off. Single
  /// switch: one trivial domain.
  std::vector<std::uint32_t> host_pods;
  std::size_t num_pods = 1;

 private:
  void build_topology() {
    BuiltTopology b = build_cluster_topology(cfg_);
    topo = std::move(b.topo);
    hosts = std::move(b.hosts);
    switches = std::move(b.switches);
    host_pods = std::move(b.host_pods);
    num_pods = b.num_pods;
  }

  ClusterConfig cfg_;
  std::unique_ptr<net::Fabric> fabric_;
  std::vector<std::unique_ptr<nic::Nic>> nics_;
  std::vector<std::unique_ptr<firmware::ReliableFirmware>> rel_;
  std::vector<std::unique_ptr<firmware::RawFirmware>> raw_;
  std::vector<std::unique_ptr<firmware::OnDemandMapper>> mappers_;
  std::vector<std::unique_ptr<firmware::FullMapper>> full_mappers_;
  std::vector<std::unique_ptr<sim::Channel<HostMsg>>> inboxes_;
};

}  // namespace sanfault::harness
