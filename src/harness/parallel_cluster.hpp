// ParallelCluster: the experiment rig on the conservative parallel engine.
//
// Builds the same topology/NIC/firmware stack as harness::Cluster but spread
// over sim::ParallelScheduler partitions: hosts are grouped along fault-
// domain (pod) boundaries by net::partition_clos_pods, every per-host
// component lives on its partition's scheduler, and one net::Fabric shard
// per partition carries the wire — cross-partition hops travel through the
// engine's lock-free channels with the cut links' latency as lookahead.
//
// What this rig deliberately does NOT carry: the KV/traffic/recovery layers
// (kv::KvRig), whose shard map, audit log and recovery monitor are shared
// mutable state across all hosts. Those stay on the serial Cluster; the
// parallel rig runs firmware-level workloads (reliable-delivery rings,
// chaos scenarios), which is where fabric-scale event rates live anyway.
//
// Chaos runs through ShardedFaultInjector on the engine's *control* queue:
// fault actions mutate the shared Topology only at global sync points, with
// every worker parked — the same instant every partition observes.
#pragma once

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "harness/cluster.hpp"
#include "net/partition.hpp"
#include "sim/parallel_scheduler.hpp"

namespace sanfault::harness {

/// Applies each fault once to the shared topology (through shard 0, so the
/// transition is counted and hooks fire exactly once — merged counters match
/// a serial run) and mirrors per-shard knobs (loss/corrupt rates) to every
/// other shard, which reads only its own copy during windows.
class ShardedFaultInjector : public net::FaultInjector {
 public:
  explicit ShardedFaultInjector(std::vector<net::Fabric*> shards)
      : shards_(std::move(shards)) {
    assert(!shards_.empty());
  }

  void fail_link(net::LinkId l) override { shards_[0]->fail_link(l); }
  void restore_link(net::LinkId l) override { shards_[0]->restore_link(l); }
  void fail_switch(net::SwitchId s) override { shards_[0]->fail_switch(s); }
  void restore_switch(net::SwitchId s) override {
    shards_[0]->restore_switch(s);
  }
  void cut_host(net::HostId h) override { shards_[0]->cut_host(h); }
  void heal_host(net::HostId h) override { shards_[0]->heal_host(h); }
  void set_link_fault_rates(std::optional<net::LinkId> l, double loss,
                            double corrupt) override {
    for (std::size_t i = 1; i < shards_.size(); ++i) {
      shards_[i]->mirror_link_fault_rates(l, loss, corrupt);
    }
    shards_[0]->set_link_fault_rates(l, loss, corrupt);
  }

 private:
  std::vector<net::Fabric*> shards_;
};

struct ParallelClusterConfig {
  ClusterConfig cluster;
  /// Logical processes to split the fabric into; clamped to the topology's
  /// pod count (partitions follow fault domains). Results are a function of
  /// this value, NOT of `threads`.
  std::uint32_t partitions = 2;
  /// Worker threads (0 = one per partition). Any value gives bit-identical
  /// results for a fixed partition count.
  std::uint32_t threads = 0;
};

class ParallelCluster {
 public:
  explicit ParallelCluster(ParallelClusterConfig pcfg)
      : cfg_(std::move(pcfg)) {
    BuiltTopology b = build_cluster_topology(cfg_.cluster);
    topo = std::move(b.topo);
    hosts = std::move(b.hosts);
    switches = std::move(b.switches);
    host_pods = std::move(b.host_pods);
    num_pods = b.num_pods;

    part = net::partition_clos_pods(topo, cfg_.partitions, host_pods,
                                    static_cast<std::uint32_t>(num_pods));

    engine = std::make_unique<sim::ParallelScheduler>(
        sim::ParallelScheduler::Config{part.count, cfg_.threads, 1});
    for (std::uint32_t from = 0; from < part.count; ++from) {
      for (std::uint32_t to = 0; to < part.count; ++to) {
        if (from == to) continue;
        engine->set_lookahead(from, to, part.pair_lookahead(from, to));
      }
    }

    // One fabric shard per partition over the one shared topology. Shard
    // registries must not individually honor SANFAULT_METRICS_JSON — the
    // merged export below is the one authoritative file.
    shards_.reserve(part.count);
    for (std::uint32_t p = 0; p < part.count; ++p) {
      shards_.push_back(std::make_unique<net::Fabric>(
          engine->local(p), topo, cfg_.cluster.fabric));
      shard_ptrs_.push_back(shards_.back().get());
      obs::Registry::of(engine->local(p)).set_export_path("");
    }
    obs::Registry::of(engine->control()).set_export_path("");
    for (std::uint32_t p = 0; p < part.count; ++p) {
      shards_[p]->bind_shard(*engine, p, part, shard_ptrs_);
    }
    injector_ = std::make_unique<ShardedFaultInjector>(shard_ptrs_);

    // Per-host stack on the owning partition's scheduler, mirroring
    // harness::Cluster member for member.
    const ClusterConfig& cc = cfg_.cluster;
    inboxes_.resize(hosts.size());
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      const std::uint32_t p = part.host_owner[i];
      nics_.push_back(std::make_unique<nic::Nic>(
          engine->local(p), *shards_[p], hosts[i], cc.nic));
      if (cc.fw == FirmwareKind::kReliable) {
        rel_.push_back(std::make_unique<firmware::ReliableFirmware>(
            *nics_.back(), cc.rel));
        if (cc.preload_routes) rel_.back()->routes().populate_all(topo, hosts[i]);
        if (cc.mapper == MapperKind::kOnDemand) {
          auto od = cc.ondemand;
          if (od.radix_oracle == nullptr) od.radix_oracle = &topo;
          mappers_.push_back(
              std::make_unique<firmware::OnDemandMapper>(*nics_.back(), od));
          rel_.back()->set_mapper(mappers_.back().get());
          if (cc.preload_routes && od.proactive_backup) {
            for (const net::HostId other : hosts) {
              if (other == hosts[i]) continue;
              if (auto r = topo.shortest_route(hosts[i], other)) {
                mappers_.back()->seed_cache(other, *r);
              }
            }
          }
        } else if (cc.mapper == MapperKind::kFull) {
          full_mappers_.push_back(std::make_unique<firmware::FullMapper>(
              *nics_.back(), topo, cc.full));
          rel_.back()->set_mapper(full_mappers_.back().get());
        }
      } else {
        raw_.push_back(std::make_unique<firmware::RawFirmware>(*nics_.back()));
        if (cc.preload_routes) raw_.back()->routes().populate_all(topo, hosts[i]);
      }
      inboxes_[i] = std::make_unique<sim::Channel<HostMsg>>();
      nics_[i]->set_host_rx(
          [this, i](net::UserHeader u, net::PayloadRef pl, net::HostId src) {
            sim::Scheduler& s = sched_of(i);
            inboxes_[i]->push(s, HostMsg{s.now(), u, std::move(pl), src});
          });
    }
  }

  [[nodiscard]] std::size_t size() const { return hosts.size(); }
  [[nodiscard]] std::uint32_t partitions() const { return part.count; }
  /// The scheduler that owns host i's whole stack.
  [[nodiscard]] sim::Scheduler& sched_of(std::size_t i) {
    return engine->local(part.host_owner[i]);
  }
  [[nodiscard]] net::Fabric& shard(std::uint32_t p) { return *shards_.at(p); }
  [[nodiscard]] net::Fabric& shard_of(std::size_t i) {
    return *shards_.at(part.host_owner[i]);
  }
  [[nodiscard]] ShardedFaultInjector& injector() { return *injector_; }
  [[nodiscard]] nic::Nic& nic(std::size_t i) { return *nics_.at(i); }
  [[nodiscard]] sim::Channel<HostMsg>& inbox(std::size_t i) {
    return *inboxes_.at(i);
  }
  [[nodiscard]] firmware::ReliableFirmware& rel(std::size_t i) {
    assert(cfg_.cluster.fw == FirmwareKind::kReliable);
    return *rel_.at(i);
  }
  [[nodiscard]] const ParallelClusterConfig& config() const { return cfg_; }

  /// Convenience: submit a payload from host `from` to host `to`. Safe
  /// before run() or from events executing on `from`'s own partition.
  void send(std::size_t from, std::size_t to,
            std::vector<std::uint8_t> payload, net::UserHeader user = {},
            std::function<void()> on_accepted = {}) {
    nic::SendRequest req;
    req.dst = hosts.at(to);
    req.user = user;
    req.payload = std::move(payload);
    nics_.at(from)->host_submit(std::move(req), std::move(on_accepted));
  }

  /// Sum of wire-level fabric stats over every shard (equals the serial
  /// fabric's stats for the same config/seed/horizon).
  [[nodiscard]] net::FabricStats fabric_stats() const {
    net::FabricStats t;
    for (const auto& sh : shards_) {
      const net::FabricStats& s = sh->stats();
      t.injected += s.injected;
      t.delivered += s.delivered;
      t.delivered_corrupt += s.delivered_corrupt;
      t.corruptions_injected += s.corruptions_injected;
      t.duplicates_injected += s.duplicates_injected;
      t.reorders_injected += s.reorders_injected;
      t.dropped_link_down += s.dropped_link_down;
      t.dropped_switch_dead += s.dropped_switch_dead;
      t.dropped_misroute += s.dropped_misroute;
      t.dropped_random += s.dropped_random;
      t.dropped_path_reset += s.dropped_path_reset;
      t.dropped_unattached += s.dropped_unattached;
    }
    return t;
  }

  /// Fold every partition registry plus the control registry into one
  /// Registry and serialize it — byte-comparable against a serial run's
  /// teardown export for the same workload.
  [[nodiscard]] std::string merged_metrics_json() {
    obs::Registry merged;
    for (std::uint32_t p = 0; p < part.count; ++p) {
      merged.merge_from(obs::Registry::of(engine->local(p)));
    }
    merged.merge_from(obs::Registry::of(engine->control()));
    return merged.to_json();
  }

  ~ParallelCluster() {
    // Mirror the serial registry's SANFAULT_METRICS_JSON teardown export
    // with the merged view (shard registries were muted in the ctor).
    if (const char* path = std::getenv("SANFAULT_METRICS_JSON")) {
      if (*path != '\0') {
        const std::string json = merged_metrics_json();
        if (std::FILE* f = std::fopen(path, "w")) {
          std::fwrite(json.data(), 1, json.size(), f);
          std::fclose(f);
        }
      }
    }
  }

  net::Topology topo;
  std::vector<net::HostId> hosts;
  std::vector<net::SwitchId> switches;
  std::vector<std::uint32_t> host_pods;
  std::size_t num_pods = 1;
  net::FabricPartition part;
  std::unique_ptr<sim::ParallelScheduler> engine;

 private:
  ParallelClusterConfig cfg_;
  std::vector<std::unique_ptr<net::Fabric>> shards_;
  std::vector<net::Fabric*> shard_ptrs_;
  std::unique_ptr<ShardedFaultInjector> injector_;
  std::vector<std::unique_ptr<nic::Nic>> nics_;
  std::vector<std::unique_ptr<firmware::ReliableFirmware>> rel_;
  std::vector<std::unique_ptr<firmware::RawFirmware>> raw_;
  std::vector<std::unique_ptr<firmware::OnDemandMapper>> mappers_;
  std::vector<std::unique_ptr<firmware::FullMapper>> full_mappers_;
  std::vector<std::unique_ptr<sim::Channel<HostMsg>>> inboxes_;
};

}  // namespace sanfault::harness
