// Minimal fixed-width table printer for the benchmark binaries, so every
// figure/table reproduction prints the same rows/series the paper reports.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace sanfault::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(std::FILE* out = stdout) const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    };
    widen(headers_);
    for (const auto& r : rows_) widen(r);

    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < widths.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : std::string{};
        std::fprintf(out, "%-*s  ", static_cast<int>(widths[i]), cell.c_str());
      }
      std::fprintf(out, "\n");
    };
    print_row(headers_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    std::fprintf(out, "%s\n", std::string(total, '-').c_str());
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline std::string fmt_bytes(std::size_t b) {
  char buf[64];
  if (b >= 1024 * 1024 && b % (1024 * 1024) == 0) {
    std::snprintf(buf, sizeof(buf), "%zuM", b / (1024 * 1024));
  } else if (b >= 1024 && b % 1024 == 0) {
    std::snprintf(buf, sizeof(buf), "%zuK", b / 1024);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu", b);
  }
  return buf;
}

/// Pretty duration: "10us", "1ms", "1s".
inline std::string fmt_interval(sim::Duration d) {
  char buf[64];
  if (d >= sim::seconds(1) && d % sim::seconds(1) == 0) {
    std::snprintf(buf, sizeof(buf), "%llus",
                  static_cast<unsigned long long>(d / sim::seconds(1)));
  } else if (d >= sim::milliseconds(1) && d % sim::milliseconds(1) == 0) {
    std::snprintf(buf, sizeof(buf), "%llums",
                  static_cast<unsigned long long>(d / sim::milliseconds(1)));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluus",
                  static_cast<unsigned long long>(d / sim::microseconds(1)));
  }
  return buf;
}

}  // namespace sanfault::harness
