#include "kv/client.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace sanfault::kv {

KvClientHost::KvClientHost(sim::Scheduler& sched, vmmc::MsgEndpoint& msgs,
                           const ShardMap& map)
    : sched_(sched), msgs_(msgs), map_(map) {
  obs::Registry& reg = obs::Registry::of(sched_);
  const std::string node = "{node=" + std::to_string(msgs_.host().v) + "}";
  call_latency_ = &reg.histogram("kv.call_latency_ns" + node, "ns");
  reg.add_collector(this, [this, &reg, node] {
    const KvClientStats& s = stats_;
    reg.counter("kv.client_calls" + node, "calls").set(s.calls);
    reg.counter("kv.client_ok" + node, "calls").set(s.ok);
    reg.counter("kv.client_failed" + node, "calls").set(s.failed);
    reg.counter("kv.client_posts" + node, "messages").set(s.posts);
    reg.counter("kv.client_timeouts" + node, "attempts").set(s.timeouts);
    reg.counter("kv.client_failovers" + node, "calls").set(s.failovers);
    reg.counter("kv.client_stale_replies" + node, "messages")
        .set(s.stale_replies);
    reg.counter("kv.client_dup_replies" + node, "messages")
        .set(s.dup_replies);
    reg.counter("kv.client_bad_msgs" + node, "messages").set(s.bad_msgs);
    reg.counter("kv.client_dead_skips" + node, "attempts").set(s.dead_skips);
  });
}

KvClientHost::~KvClientHost() {
  if (auto* r = obs::Registry::find(sched_)) r->remove_collectors(this);
}

void KvClientHost::start() { pump(); }

sim::Process KvClientHost::pump() {
  for (;;) {
    vmmc::Msg m = co_await msgs_.inbox().pop(sched_);
    auto rep = decode_reply(m.bytes);
    if (!rep) {
      ++stats_.bad_msgs;
      continue;
    }
    auto it = pending_.find(rep->id.packed());
    if (it == pending_.end()) {
      ++stats_.stale_replies;  // the call already gave up
      continue;
    }
    if (it->second->replied) {
      ++stats_.dup_replies;  // retry answered twice; first one won
      continue;
    }
    it->second->replied = true;
    it->second->reply = std::move(*rep);
    it->second->done.fire(sched_);
  }
}

sim::Task<Outcome> KvClientHost::call(RequestId id, Op op, std::uint64_t key,
                                      std::vector<std::uint8_t> value,
                                      const KvRetryPolicy& policy) {
  ++stats_.calls;
  Outcome o;
  o.id = id;
  o.issued_at = sched_.now();

  Request q;
  q.op = op;
  q.id = id;
  q.key = key;
  q.reply_to = host().v;
  q.value = std::move(value);
  const auto wire = encode(q);

  const std::size_t shard = map_.shard_of(key);
  net::HostId target = map_.primary(shard);
  const net::HostId backup = map_.backup(shard);

  PendingCall pc;
  pending_[id.packed()] = &pc;
  sim::Duration timeout = policy.base_timeout;
  int consecutive_timeouts = 0;

  while (!pc.replied && o.attempts < policy.max_attempts) {
    if (dead_ && target != backup && dead_(target)) {
      // Membership already confirmed the target dead — skip straight to the
      // backup rather than discovering the corpse one timeout at a time.
      target = backup;
      ++o.failovers;
      ++stats_.failovers;
      ++stats_.dead_skips;
    }
    ++o.attempts;
    ++stats_.posts;
    co_await msgs_.post(target, wire);
    if (pc.replied) break;  // landed while the post was being accepted
    auto timer = sched_.after(timeout, [this, &pc] { pc.done.fire(sched_); });
    co_await pc.done.wait(sched_);
    sched_.cancel(timer);
    pc.done.reset();
    if (pc.replied) break;

    ++stats_.timeouts;
    if (++consecutive_timeouts == policy.failover_after && target != backup) {
      target = backup;
      ++o.failovers;
      ++stats_.failovers;
    }
    timeout = std::min(timeout * 2, policy.max_timeout);
  }
  pending_.erase(id.packed());

  o.completed_at = sched_.now();
  if (pc.replied) {
    o.status = pc.reply.status;
    o.value = std::move(pc.reply.value);
  } else {
    o.status = Status::kTimeout;
  }
  if (o.ok()) {
    ++stats_.ok;
    call_latency_->record(static_cast<std::uint64_t>(o.latency()));
  } else {
    ++stats_.failed;
  }
  co_return o;
}

}  // namespace sanfault::kv
