// Consistent-hash shard map: keys -> shards -> (primary, backup) servers.
//
// Classic hash-ring construction: every server contributes `vnodes` points
// on a 64-bit ring (SplitMix64 of server id x replica index); a shard's
// point is the hash of its shard index, its primary is the first server
// clockwise from that point and its backup the next *distinct* server.
// Deterministic for a given (servers, seed) — every node and every client
// computes the identical map with no coordination, which is what lets the
// service route purely locally.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "net/ids.hpp"

namespace sanfault::kv {

namespace detail {
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace detail

class ShardMap {
 public:
  /// `server_pods` (optional) gives the fault-domain (pod) index of each
  /// server, parallel to `servers`. When present, a shard's backup is the
  /// next ring server in a DIFFERENT pod from its primary, so no single
  /// pod-level fault can hold both replicas of any shard. Falls back to the
  /// classic next-distinct-server rule when every server shares the
  /// primary's pod (degenerate fabrics). Empty = placement is pod-blind.
  ShardMap(std::vector<net::HostId> servers, std::size_t num_shards = 32,
           std::size_t vnodes = 16, std::uint64_t seed = 0x5a4dull,
           std::vector<std::uint32_t> server_pods = {})
      : servers_(std::move(servers)), num_shards_(num_shards) {
    assert(servers_.size() >= 2 && "replication needs at least two servers");
    assert((server_pods.empty() || server_pods.size() == servers_.size()) &&
           "server_pods must parallel servers");
    std::vector<std::pair<std::uint64_t, std::size_t>> ring;
    ring.reserve(servers_.size() * vnodes);
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      for (std::size_t v = 0; v < vnodes; ++v) {
        ring.emplace_back(
            detail::mix64(seed ^ detail::mix64(
                              (static_cast<std::uint64_t>(servers_[s].v) << 20) + v)),
            s);
      }
    }
    std::sort(ring.begin(), ring.end());

    primary_.resize(num_shards_);
    backup_.resize(num_shards_);
    for (std::size_t sh = 0; sh < num_shards_; ++sh) {
      const std::uint64_t point = detail::mix64(seed + sh);
      auto it = std::lower_bound(ring.begin(), ring.end(),
                                 std::make_pair(point, std::size_t{0}));
      auto at = [&](std::size_t step) {
        return ring[(static_cast<std::size_t>(it - ring.begin()) + step) %
                    ring.size()]
            .second;
      };
      const std::size_t prim = at(0);
      std::size_t step = 1;
      while (at(step) == prim) ++step;  // terminates: >= 2 distinct servers
      primary_[sh] = prim;
      backup_[sh] = at(step);
      if (!server_pods.empty()) {
        // Pod-aware override: keep walking the ring for a server outside the
        // primary's pod. Bounded by ring.size(); if the walk wraps without
        // finding one (all servers in one pod) the pod-blind backup stands.
        const std::uint32_t prim_pod = server_pods[prim];
        for (std::size_t s2 = step; s2 < ring.size(); ++s2) {
          const std::size_t cand = at(s2);
          if (server_pods[cand] != prim_pod) {
            backup_[sh] = cand;
            break;
          }
        }
      }
    }
  }

  [[nodiscard]] std::size_t num_shards() const { return num_shards_; }
  [[nodiscard]] const std::vector<net::HostId>& servers() const {
    return servers_;
  }

  [[nodiscard]] std::size_t shard_of(std::uint64_t key) const {
    return static_cast<std::size_t>(detail::mix64(key)) % num_shards_;
  }

  [[nodiscard]] net::HostId primary(std::size_t shard) const {
    return servers_[primary_[shard]];
  }
  [[nodiscard]] net::HostId backup(std::size_t shard) const {
    return servers_[backup_[shard]];
  }
  [[nodiscard]] net::HostId primary_of_key(std::uint64_t key) const {
    return primary(shard_of(key));
  }
  [[nodiscard]] net::HostId backup_of_key(std::uint64_t key) const {
    return backup(shard_of(key));
  }

  [[nodiscard]] bool is_primary(net::HostId h, std::size_t shard) const {
    return primary(shard) == h;
  }
  [[nodiscard]] bool is_backup(net::HostId h, std::size_t shard) const {
    return backup(shard) == h;
  }

  /// Shards for which `h` is primary (used by the audit to walk replicas).
  [[nodiscard]] std::vector<std::size_t> shards_owned_by(net::HostId h) const {
    std::vector<std::size_t> out;
    for (std::size_t sh = 0; sh < num_shards_; ++sh) {
      if (primary(sh) == h) out.push_back(sh);
    }
    return out;
  }

 private:
  std::vector<net::HostId> servers_;
  std::size_t num_shards_;
  std::vector<std::size_t> primary_;
  std::vector<std::size_t> backup_;
};

}  // namespace sanfault::kv
