#include "kv/server.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace sanfault::kv {

KvServer::KvServer(sim::Scheduler& sched, vmmc::MsgEndpoint& msgs,
                   const ShardMap& map, KvServerConfig cfg)
    : sched_(sched), msgs_(msgs), map_(map), cfg_(cfg) {
  obs::Registry& reg = obs::Registry::of(sched_);
  const std::string node = "{node=" + std::to_string(msgs_.host().v) + "}";
  reg.add_collector(this, [this, &reg, node] {
    const KvServerStats& s = stats_;
    reg.counter("kv.server_gets" + node, "requests").set(s.gets);
    reg.counter("kv.server_puts" + node, "requests").set(s.puts);
    reg.counter("kv.server_dels" + node, "requests").set(s.dels);
    reg.counter("kv.server_backup_reads" + node, "requests")
        .set(s.backup_reads);
    reg.counter("kv.server_forwards" + node, "requests").set(s.forwards);
    reg.counter("kv.server_not_owner" + node, "requests").set(s.not_owner);
    reg.counter("kv.server_dup_requests" + node, "requests")
        .set(s.dup_requests);
    reg.counter("kv.server_cached_replies" + node, "requests")
        .set(s.cached_replies);
    reg.counter("kv.server_replicates_tx" + node, "messages")
        .set(s.replicates_tx);
    reg.counter("kv.server_replicates_rx" + node, "messages")
        .set(s.replicates_rx);
    reg.counter("kv.server_dup_replicates" + node, "messages")
        .set(s.dup_replicates);
    reg.counter("kv.server_repl_retries" + node, "attempts")
        .set(s.repl_retries);
    reg.counter("kv.server_repl_failures" + node, "writes")
        .set(s.repl_failures);
    reg.counter("kv.server_bad_msgs" + node, "messages").set(s.bad_msgs);
  });
}

KvServer::~KvServer() {
  if (auto* r = obs::Registry::find(sched_)) r->remove_collectors(this);
}

void KvServer::start() { serve_loop(); }

sim::Process KvServer::serve_loop() {
  for (;;) {
    vmmc::Msg m = co_await msgs_.inbox().pop(sched_);
    dispatch(std::move(m));
  }
}

// The loop thread must never block on a post (send buffers can be exhausted
// during an outage), so every path that transmits runs as its own Process;
// only bookkeeping (dedup, ack matching, replica apply) happens inline.
void KvServer::dispatch(vmmc::Msg m) {
  switch (peek_type(m.bytes)) {
    case MsgType::kRequest: {
      auto q = decode_request(m.bytes);
      if (!q) {
        ++stats_.bad_msgs;
        return;
      }
      const std::size_t shard = map_.shard_of(q->key);
      const net::HostId self = host();
      if (map_.is_primary(self, shard)) {
        if (q->op == Op::kGet) {
          handle_read(std::move(*q), /*from_replica=*/false);
          return;
        }
        const std::uint64_t id = q->id.packed();
        auto it = dedup_.find(id);
        if (it != dedup_.end()) {
          if (it->second.done) {
            ++stats_.cached_replies;
            post_reply(q->reply_to, it->second.reply);
          } else {
            ++stats_.dup_requests;  // original still replicating; drop
          }
          return;
        }
        dedup_.emplace(id, DedupEntry{});
        handle_write(std::move(*q));
        return;
      }
      if (map_.is_backup(self, shard)) {
        if (q->op == Op::kGet) {
          ++stats_.backup_reads;
          handle_read(std::move(*q), /*from_replica=*/true);
        } else {
          ++stats_.forwards;
          handle_forward(std::move(*q));
        }
        return;
      }
      ++stats_.not_owner;
      Reply rep{q->id, Status::kNotOwner, {}};
      post_reply(q->reply_to, encode(rep));
      return;
    }
    case MsgType::kReplicate: {
      auto r = decode_replicate(m.bytes);
      if (!r) {
        ++stats_.bad_msgs;
        return;
      }
      on_replicate(m.src, std::move(*r));
      return;
    }
    case MsgType::kReplAck: {
      auto a = decode_repl_ack(m.bytes);
      if (!a) {
        ++stats_.bad_msgs;
        return;
      }
      auto mit = repl_waiting_.find(m.src);
      if (mit != repl_waiting_.end()) {
        auto it = mit->second.find(a->repl_seq);
        if (it != mit->second.end()) it->second->acked = true;
      }
      drain_acked(m.src);
      return;
    }
    default:
      ++stats_.bad_msgs;
      return;
  }
}

sim::Process KvServer::handle_read(Request q, bool from_replica) {
  (void)from_replica;
  ++stats_.gets;
  Reply rep{q.id, Status::kNotFound, {}};
  auto it = store_.find(q.key);
  if (it != store_.end()) {
    rep.status = Status::kOk;
    rep.value = it->second;
  }
  co_await msgs_.post(net::HostId{q.reply_to}, encode(rep));
}

sim::Process KvServer::handle_write(Request q) {
  const std::uint64_t id = q.id.packed();
  const net::HostId backup = map_.backup(map_.shard_of(q.key));

  Replicate rep;
  rep.id = q.id;
  rep.repl_seq = ++next_repl_seq_[backup];
  rep.op = q.op;
  rep.key = q.key;
  rep.value = q.value;
  const auto wire = encode(rep);

  PendingRepl pr;
  pr.q = std::move(q);
  repl_waiting_[backup][rep.repl_seq] = &pr;
  sim::Duration timeout = cfg_.repl_timeout;
  for (int attempt = 0; attempt < cfg_.repl_max_attempts && !pr.applied;
       ++attempt) {
    if (attempt > 0) ++stats_.repl_retries;
    ++stats_.replicates_tx;
    co_await msgs_.post(backup, wire);
    if (pr.applied) break;
    auto timer = sched_.after(timeout, [this, &pr] { pr.done.fire(sched_); });
    co_await pr.done.wait(sched_);
    sched_.cancel(timer);
    pr.done.reset();
    timeout = std::min<sim::Duration>(timeout * 2, cfg_.repl_timeout_cap);
  }

  if (!pr.applied) {
    // Runaway guard tripped: forget the request entirely so a later client
    // retry restarts the write from scratch. Nothing was applied here, and
    // the backup side is idempotent, so correctness is preserved. Erasing
    // our seq releases any later acked writes queued behind it.
    repl_waiting_[backup].erase(rep.repl_seq);
    drain_acked(backup);
    ++stats_.repl_failures;
    dedup_.erase(id);
    co_return;
  }

  // Commit point already happened inside drain_acked (backup acked + local
  // apply in channel order); all that is left is replying to the client.
  Reply out{pr.q.id, pr.result, {}};
  auto encoded = encode(out);
  // dedup_ may have rehashed across the co_awaits above; re-find the entry.
  auto& entry = dedup_[id];
  entry.done = true;
  entry.reply = encoded;
  co_await msgs_.post(net::HostId{pr.q.reply_to}, std::move(encoded));
}

void KvServer::drain_acked(net::HostId backup) {
  auto mit = repl_waiting_.find(backup);
  if (mit == repl_waiting_.end()) return;
  auto& waiting = mit->second;
  while (!waiting.empty() && waiting.begin()->second->acked) {
    PendingRepl* pr = waiting.begin()->second;
    waiting.erase(waiting.begin());
    pr->result =
        apply(pr->q.op, pr->q.key, std::move(pr->q.value), pr->q.id);
    pr->applied = true;
    pr->done.fire(sched_);
  }
}

sim::Process KvServer::handle_forward(Request q) {
  // Proxy the write, unchanged, to the shard primary: the reply goes
  // straight from the primary to the original client (reply_to rides along).
  const net::HostId primary = map_.primary(map_.shard_of(q.key));
  co_await msgs_.post(primary, encode(q));
}

void KvServer::on_replicate(net::HostId src, Replicate r) {
  ++stats_.replicates_rx;
  auto& ch = repl_rx_[src];
  if (r.repl_seq < ch.expected) {
    // Already applied; re-ack — the earlier ack may be what got delayed.
    ++stats_.dup_replicates;
    send_repl_ack(src, r.repl_seq);
    return;
  }
  if (r.repl_seq > ch.expected) {
    // A predecessor is still in flight (its retransmission will arrive).
    // Hold — and do not ack: an ack promises this write has been applied.
    ch.stash.emplace(r.repl_seq, std::move(r));
    return;
  }
  apply_replicate(src, std::move(r));
  ++ch.expected;
  while (!ch.stash.empty() && ch.stash.begin()->first == ch.expected) {
    Replicate next = std::move(ch.stash.begin()->second);
    ch.stash.erase(ch.stash.begin());
    apply_replicate(src, std::move(next));
    ++ch.expected;
  }
}

void KvServer::apply_replicate(net::HostId src, Replicate r) {
  const std::uint64_t id = r.id.packed();
  if (backup_applied_.insert(id).second) {
    apply(r.op, r.key, std::move(r.value), r.id);
  } else {
    ++stats_.dup_replicates;
  }
  send_repl_ack(src, r.repl_seq);
}

sim::Process KvServer::send_repl_ack(net::HostId to, std::uint64_t seq) {
  co_await msgs_.post(to, encode(ReplAck{seq}));
}

Status KvServer::apply(Op op, std::uint64_t key,
                       std::vector<std::uint8_t> value, const RequestId& id) {
  ++apply_counts_[id.packed()];
  switch (op) {
    case Op::kPut:
      ++stats_.puts;
      store_[key] = std::move(value);
      return Status::kOk;
    case Op::kDel:
      ++stats_.dels;
      return store_.erase(key) != 0 ? Status::kOk : Status::kNotFound;
    case Op::kGet:
      break;
  }
  return Status::kNotFound;  // unreachable for writes
}

sim::Process KvServer::post_reply(std::uint32_t to,
                                  std::vector<std::uint8_t> bytes) {
  co_await msgs_.post(net::HostId{to}, std::move(bytes));
}

}  // namespace sanfault::kv
