// KvClientHost: the client-side library for the replicated KV service.
//
// One KvClientHost per physical client host; many logical clients multiplex
// over it (the open-loop traffic engine runs hundreds per host). call()
// implements the full client protocol:
//
//  * route by key through the shared ShardMap to the shard primary;
//  * arm a timeout per attempt; retry with exponential backoff on expiry
//    (the request id never changes, so server-side dedup makes the retries
//    harmless);
//  * after `failover_after` consecutive timeouts, fail over to the shard's
//    backup — the situation the paper's permanent-failure machinery creates:
//    the path died, the firmware declared it after fail_threshold and bumped
//    the generation, and until re-mapping completes the primary is
//    unreachable. The backup serves reads from its replica and proxies
//    writes, so the service stays available through the outage;
//  * accept whichever reply for the request id arrives first — originals and
//    retries are indistinguishable by design.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "kv/shard_map.hpp"
#include "kv/wire.hpp"
#include "obs/metrics.hpp"
#include "sim/awaitables.hpp"
#include "sim/process.hpp"
#include "sim/task.hpp"
#include "vmmc/rpc.hpp"

namespace sanfault::kv {

struct KvRetryPolicy {
  sim::Duration base_timeout = sim::milliseconds(3);
  sim::Duration max_timeout = sim::milliseconds(50);
  int max_attempts = 12;
  /// Consecutive timeouts before switching to the shard backup.
  int failover_after = 2;
};

/// Result of one logical request, after all retries.
struct Outcome {
  Status status = Status::kTimeout;
  RequestId id;
  std::vector<std::uint8_t> value;  // GET payload
  int attempts = 0;
  int failovers = 0;
  sim::Time issued_at = 0;
  sim::Time completed_at = 0;

  /// kOk and kNotFound are both committed, correct answers.
  [[nodiscard]] bool ok() const {
    return status == Status::kOk || status == Status::kNotFound;
  }
  [[nodiscard]] sim::Duration latency() const { return completed_at - issued_at; }
};

struct KvClientStats {
  std::uint64_t calls = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t posts = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t failovers = 0;
  std::uint64_t stale_replies = 0;  // reply after the call gave up
  std::uint64_t dup_replies = 0;
  std::uint64_t bad_msgs = 0;
  std::uint64_t dead_skips = 0;  // attempts redirected by the dead oracle
};

class KvClientHost {
 public:
  KvClientHost(sim::Scheduler& sched, vmmc::MsgEndpoint& msgs,
               const ShardMap& map);
  ~KvClientHost();

  /// Spawn the reply-dispatch pump. Call once, after mesh connect.
  void start();

  /// Optional membership oracle: returns true when this node's local
  /// membership view has confirmed `h` dead. call() consults it before every
  /// attempt and fails over to the shard backup immediately instead of
  /// burning `failover_after` timeouts against a corpse. Kept as a plain
  /// callback so kv stays ignorant of the membership layer's types.
  using DeadHook = std::function<bool(net::HostId)>;
  void set_dead_hook(DeadHook dead) { dead_ = std::move(dead); }

  /// Issue one request on behalf of logical client `id.client`. The caller
  /// owns id uniqueness (the traffic engine assigns per-client sequences).
  sim::Task<Outcome> call(RequestId id, Op op, std::uint64_t key,
                          std::vector<std::uint8_t> value,
                          const KvRetryPolicy& policy);

  [[nodiscard]] net::HostId host() const { return msgs_.host(); }
  [[nodiscard]] const KvClientStats& stats() const { return stats_; }

 private:
  struct PendingCall {
    sim::Trigger done;
    bool replied = false;
    Reply reply;
  };

  sim::Process pump();

  sim::Scheduler& sched_;
  vmmc::MsgEndpoint& msgs_;
  const ShardMap& map_;
  std::unordered_map<std::uint64_t, PendingCall*> pending_;
  DeadHook dead_;
  KvClientStats stats_;
  obs::Histogram* call_latency_ = nullptr;  // committed calls only
};

}  // namespace sanfault::kv
