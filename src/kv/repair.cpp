#include "kv/repair.hpp"

#include <algorithm>
#include <utility>

namespace sanfault::kv {

RepairMachine::RepairMachine(sim::Scheduler& sched, vmmc::MsgEndpoint& msgs,
                             StripedStore& store, const ec::StripeMap& map,
                             const ec::RsCodec& codec, RepairConfig cfg)
    : sched_(sched),
      msgs_(msgs),
      store_(store),
      map_(map),
      codec_(codec),
      cfg_(cfg),
      tokens_(static_cast<std::int64_t>(cfg.burst_bytes)) {
  obs::Registry& reg = obs::Registry::of(sched_);
  const std::string node = "{node=" + std::to_string(msgs_.host().v) + "}";
  queue_depth_ = &reg.gauge("ec.repair_queue_depth" + node, "stripes");
  stripe_latency_ = &reg.histogram("ec.repair_stripe_latency_ns" + node, "ns");
  reg.add_collector(this, [this, &reg, node] {
    const RepairStats& s = stats_;
    reg.counter("ec.repair_confirms" + node, "deaths").set(s.confirms);
    reg.counter("ec.repair_stripes_enqueued" + node, "stripes")
        .set(s.stripes_enqueued);
    reg.counter("ec.repair_stripes_repaired" + node, "stripes")
        .set(s.stripes_repaired);
    reg.counter("ec.repair_stripes_abandoned" + node, "stripes")
        .set(s.stripes_abandoned);
    reg.counter("ec.repair_units_rebuilt" + node, "units")
        .set(s.units_rebuilt);
    reg.counter("ec.repair_bytes_fetched" + node, "bytes")
        .set(s.bytes_fetched);
    reg.counter("ec.repair_bytes_written" + node, "bytes")
        .set(s.bytes_written);
    reg.counter("ec.repair_fetch_retries" + node, "attempts")
        .set(s.fetch_retries);
    reg.counter("ec.repair_put_retries" + node, "attempts")
        .set(s.put_retries);
    reg.counter("ec.repair_throttle_waits" + node, "takes")
        .set(s.throttle_waits);
    reg.counter("ec.repair_throttle_wait_ns" + node, "ns")
        .set(s.throttle_wait_ns);
  });
}

RepairMachine::~RepairMachine() {
  if (auto* r = obs::Registry::find(sched_)) r->remove_collectors(this);
}

void RepairMachine::start() {
  vmmc::MsgEndpoint::Tap prev = msgs_.tap();
  msgs_.set_tap([this, prev = std::move(prev)](const vmmc::Msg& m) {
    if (handle(m)) return true;
    return prev ? prev(m) : false;
  });
  worker();
}

bool RepairMachine::handle(const vmmc::Msg& m) {
  const MsgType t = peek_type(m.bytes);
  if (t == MsgType::kUnitReply) {
    auto rep = decode_unit_reply(m.bytes);
    if (!rep) return true;
    auto it = pending_.find(rep->id.packed());
    if (it == pending_.end() || it->second->replied ||
        it->second->unit != rep->unit) {
      return true;  // stale fetch reply
    }
    it->second->replied = true;
    it->second->status = rep->status;
    it->second->reply = std::move(*rep);
    it->second->done.fire(sched_);
    return true;
  }
  if (t == MsgType::kUnitAck) {
    auto a = decode_unit_ack(m.bytes);
    if (!a) return true;
    auto it = pending_.find(a->id.packed());
    if (it == pending_.end() || it->second->replied ||
        it->second->unit != a->unit) {
      return true;  // stale spare-write ack
    }
    it->second->replied = true;
    it->second->status = a->status;
    it->second->done.fire(sched_);
    return true;
  }
  return false;
}

void RepairMachine::note(std::string line) {
  if (!cfg_.log_events) return;
  log_.push_back("t=" + std::to_string(sched_.now()) + " " + std::move(line));
}

void RepairMachine::on_confirm(net::HostId dead, sim::Time) {
  ++stats_.confirms;
  note("confirm dead=" + std::to_string(dead.v));
  const net::HostId self = host();
  // The death's placement effect, before vs after: resolving with the dead
  // host forced alive recovers where units lived just before the confirm.
  const auto now_dead = [this](net::HostId h) { return dead_ && dead_(h); };
  const auto prev_dead = [this, dead](net::HostId h) {
    return h != dead && dead_ && dead_(h);
  };

  std::vector<std::uint64_t> keys;
  keys.reserve(store_.store().size());
  for (const auto& [key, units] : store_.store()) keys.push_back(key);
  std::sort(keys.begin(), keys.end());  // store order is hash order; fix it

  for (const std::uint64_t key : keys) {
    const std::size_t group = map_.group_of(key);
    const auto prev = map_.resolve(group, prev_dead);
    const auto now = map_.resolve(group, now_dead);
    bool lost = false;
    std::size_t leader_unit = map_.n();
    for (std::size_t u = 0; u < prev.size(); ++u) {
      if (prev[u] == dead) {
        lost = true;
        continue;
      }
      // Surviving donor: kept its holder across the death and that holder
      // is live in our view.
      if (now[u] == prev[u] && !now_dead(now[u]) && leader_unit == map_.n()) {
        leader_unit = u;
      }
    }
    if (!lost || leader_unit == map_.n()) continue;
    if (now[leader_unit] != self) continue;  // some other node leads
    ++stats_.stripes_enqueued;
    note("enqueue key=" + std::to_string(key));
    queue_.push_back(Job{key, dead, 0});
    queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
    work_.fire(sched_);
  }
}

sim::Process RepairMachine::worker() {
  for (;;) {
    while (queue_.empty()) {
      co_await work_.wait(sched_);
      work_.reset();
    }
    Job job = queue_.front();
    queue_.pop_front();
    queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
    inflight_ = true;
    const sim::Time t0 = sched_.now();
    const bool ok = co_await repair_one(job);
    if (ok) {
      ++stats_.stripes_repaired;
      stripe_latency_->record(sched_.now() - t0);
      note("repaired key=" + std::to_string(job.key));
    } else if (job.round + 1 < cfg_.stripe_max_rounds) {
      Job retry = job;
      ++retry.round;
      requeue_later(retry);
    } else {
      ++stats_.stripes_abandoned;
      note("abandoned key=" + std::to_string(job.key));
    }
    inflight_ = false;
  }
}

sim::Process RepairMachine::requeue_later(Job job) {
  ++requeues_;
  co_await sim::DelayFor{sched_, cfg_.requeue_delay};
  --requeues_;
  queue_.push_back(job);
  queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
  work_.fire(sched_);
}

sim::Task<bool> RepairMachine::repair_one(const Job& job) {
  const net::HostId self = host();
  const std::size_t n = map_.n();
  const std::size_t k = map_.k();
  const auto now_dead = [this](net::HostId h) { return dead_ && dead_(h); };
  const auto prev_dead = [this, d = job.dead](net::HostId h) {
    return h != d && dead_ && dead_(h);
  };
  const std::size_t group = map_.group_of(job.key);
  const auto prev = map_.resolve(group, prev_dead);
  const auto now = map_.resolve(group, now_dead);

  std::vector<std::size_t> lost;
  for (std::size_t u = 0; u < n; ++u) {
    if (prev[u] == job.dead) lost.push_back(u);
  }
  if (lost.empty()) co_return true;

  // The leader is a surviving holder, so it has a local record to size the
  // stripe from. If the local unit vanished the lead was stale — drop.
  const auto kit = store_.store().find(job.key);
  if (kit == store_.store().end() || kit->second.empty()) co_return true;
  const RequestId writer = kit->second.begin()->second.writer;
  const std::uint32_t object_len = kit->second.begin()->second.object_len;
  const std::uint64_t unit_bytes = codec_.unit_len(object_len);

  // Gather k survivors: local units are free, remote ones cost bucket
  // tokens and a fetch RPC each.
  std::vector<std::vector<std::uint8_t>> units(n);
  std::vector<bool> have(n, false);
  std::size_t gathered = 0;
  for (std::size_t u = 0; u < n && gathered < k; ++u) {
    if (prev[u] == job.dead || now[u] != self) continue;
    const auto uit = kit->second.find(static_cast<std::uint8_t>(u));
    if (uit == kit->second.end()) continue;
    units[u] = uit->second.bytes;
    have[u] = true;
    ++gathered;
  }
  for (std::size_t u = 0; u < n && gathered < k; ++u) {
    if (have[u] || prev[u] == job.dead) continue;
    // Only units that stayed put are trustworthy donors; a re-homed unit's
    // spare may not have been written yet.
    if (now[u] != prev[u] || now_dead(now[u]) || now[u] == self) continue;
    co_await throttle_take(unit_bytes);
    UnitReply rep;
    if (!co_await fetch_remote(job.key, static_cast<std::uint8_t>(u), now[u],
                               &rep)) {
      continue;
    }
    stats_.bytes_fetched += rep.value.size();
    units[u] = std::move(rep.value);
    have[u] = true;
    ++gathered;
  }
  if (gathered < k) co_return false;  // survivors unreachable; retry later

  if (!codec_.reconstruct(units, have)) co_return false;

  for (const std::size_t u : lost) {
    const net::HostId target = now[u];
    if (now_dead(target)) co_return false;  // no live spare yet
    UnitPut p;
    p.id = writer;
    p.key = job.key;
    p.unit = static_cast<std::uint8_t>(u);
    p.object_len = object_len;
    p.reply_to = self.v;
    p.value = units[u];
    if (target == self) {
      store_.apply_local(p);
    } else {
      co_await throttle_take(unit_bytes);
      if (!co_await write_unit(std::move(p), target)) co_return false;
      stats_.bytes_written += unit_bytes;
    }
    ++stats_.units_rebuilt;
    note("rebuilt key=" + std::to_string(job.key) + " unit=" +
         std::to_string(u) + " onto=" + std::to_string(target.v));
  }
  co_return true;
}

sim::Task<bool> RepairMachine::fetch_remote(std::uint64_t key,
                                            std::uint8_t unit,
                                            net::HostId from, UnitReply* out) {
  UnitGet g;
  g.id = RequestId{0xEC000000ull | host().v, ++rpc_seq_};
  g.key = key;
  g.unit = unit;
  g.reply_to = host().v;
  const auto wire = encode(g);

  PendingRpc pr;
  pr.unit = unit;
  pending_[g.id.packed()] = &pr;
  sim::Duration timeout = cfg_.rpc_timeout;
  for (int attempt = 0; attempt < cfg_.rpc_max_attempts && !pr.replied;
       ++attempt) {
    if (dead_ && dead_(from)) break;  // donor died mid-repair
    if (attempt > 0) ++stats_.fetch_retries;
    co_await msgs_.post(from, wire);
    if (pr.replied) break;
    auto timer = sched_.after(timeout, [this, &pr] { pr.done.fire(sched_); });
    co_await pr.done.wait(sched_);
    sched_.cancel(timer);
    pr.done.reset();
    timeout = std::min(timeout * 2, cfg_.rpc_timeout_cap);
  }
  pending_.erase(g.id.packed());
  if (!pr.replied || pr.status != Status::kOk) co_return false;
  *out = std::move(pr.reply);
  co_return true;
}

sim::Task<bool> RepairMachine::write_unit(UnitPut put, net::HostId to) {
  PendingRpc pr;
  pr.unit = put.unit;
  pending_[put.id.packed()] = &pr;
  const auto wire = encode(put);
  sim::Duration timeout = cfg_.rpc_timeout;
  for (int attempt = 0; attempt < cfg_.rpc_max_attempts && !pr.replied;
       ++attempt) {
    if (dead_ && dead_(to)) break;  // spare died; placement will re-home
    if (attempt > 0) ++stats_.put_retries;
    co_await msgs_.post(to, wire);
    if (pr.replied) break;
    auto timer = sched_.after(timeout, [this, &pr] { pr.done.fire(sched_); });
    co_await pr.done.wait(sched_);
    sched_.cancel(timer);
    pr.done.reset();
    timeout = std::min(timeout * 2, cfg_.rpc_timeout_cap);
  }
  pending_.erase(put.id.packed());
  co_return pr.replied && pr.status == Status::kOk;
}

void RepairMachine::refill() {
  const sim::Time now = sched_.now();
  sim::Duration dt = now - last_refill_;
  last_refill_ = now;
  // Cap the window so dt * rate cannot overflow; the bucket is full after
  // ~burst/rate seconds of idleness anyway.
  dt = std::min<sim::Duration>(dt, sim::seconds(10));
  const std::uint64_t earned =
      dt * cfg_.bandwidth_bytes_per_sec / 1'000'000'000ull;
  tokens_ = std::min<std::int64_t>(
      tokens_ + static_cast<std::int64_t>(earned),
      static_cast<std::int64_t>(cfg_.burst_bytes));
}

sim::Task<void> RepairMachine::throttle_take(std::uint64_t bytes) {
  if (cfg_.bandwidth_bytes_per_sec == 0 || bytes == 0) co_return;
  refill();
  // A take larger than the burst window drives the bucket into debt, which
  // later takes then have to pay off — large units still average the rate.
  const auto need = static_cast<std::int64_t>(
      std::min<std::uint64_t>(bytes, cfg_.burst_bytes));
  const sim::Time t0 = sched_.now();
  bool waited = false;
  while (tokens_ < need) {
    const auto deficit = static_cast<std::uint64_t>(need - tokens_);
    const sim::Duration wait =
        (deficit * 1'000'000'000ull + cfg_.bandwidth_bytes_per_sec - 1) /
        cfg_.bandwidth_bytes_per_sec;
    waited = true;
    co_await sim::DelayFor{sched_, std::max<sim::Duration>(wait, 1)};
    refill();
  }
  tokens_ -= static_cast<std::int64_t>(bytes);
  if (waited) {
    ++stats_.throttle_waits;
    stats_.throttle_wait_ns += sched_.now() - t0;
  }
}

}  // namespace sanfault::kv
