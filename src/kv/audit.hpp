// Post-run consistency audit for the replicated KV service.
//
// The traffic source (engine or test) keeps a ShadowMap: every issued write
// and every *committed* write (client saw kOk/kNotFound for a PUT/DEL). After
// the run quiesces, audit() proves the end-to-end exactly-once contract the
// stack claims to provide over an at-least-once transport:
//
//   1. no lost committed write   — each committed write was applied exactly
//                                  once on the shard primary AND exactly once
//                                  on the shard backup (apply counts);
//   2. no duplicated write       — no write request, committed or not, was
//                                  applied more than once anywhere;
//   3. replica agreement         — per shard, primary and backup stores hold
//                                  identical key/value sets;
//   4. value provenance          — every stored value decodes to the id of a
//                                  write this run actually issued (no
//                                  corruption / cross-wiring).
//
// Values embed their writer's RequestId in the first 16 bytes so provenance
// is checkable byte-for-byte.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ec/placement.hpp"
#include "ec/rs.hpp"
#include "kv/server.hpp"
#include "kv/shard_map.hpp"
#include "kv/striped.hpp"
#include "kv/wire.hpp"

namespace sanfault::kv {

/// Build a PUT value: 16-byte RequestId header + repeating pattern filler.
inline std::vector<std::uint8_t> make_value(const RequestId& id,
                                            std::size_t size) {
  std::vector<std::uint8_t> v(std::max<std::size_t>(size, 16));
  for (int i = 0; i < 8; ++i) {
    v[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(id.client >> (8 * i));
    v[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(id.seq >> (8 * i));
  }
  for (std::size_t i = 16; i < v.size(); ++i) {
    v[i] = static_cast<std::uint8_t>(id.seq + i);
  }
  return v;
}

inline std::optional<RequestId> value_writer(
    const std::vector<std::uint8_t>& v) {
  if (v.size() < 16) return std::nullopt;
  RequestId id;
  for (int i = 0; i < 8; ++i) {
    id.client |= static_cast<std::uint64_t>(v[static_cast<std::size_t>(i)])
                 << (8 * i);
    id.seq |= static_cast<std::uint64_t>(v[static_cast<std::size_t>(8 + i)])
              << (8 * i);
  }
  return id;
}

class ShadowMap {
 public:
  void record_issued_write(const RequestId& id, std::uint64_t key) {
    issued_.emplace(id.packed(), key);
  }
  void record_committed(const RequestId& id) {
    committed_.insert(id.packed());
  }

  [[nodiscard]] std::uint64_t issued_writes() const { return issued_.size(); }
  [[nodiscard]] std::uint64_t committed_writes() const {
    return committed_.size();
  }
  [[nodiscard]] const std::unordered_map<std::uint64_t, std::uint64_t>& issued()
      const {
    return issued_;
  }
  [[nodiscard]] const std::unordered_set<std::uint64_t>& committed() const {
    return committed_;
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> issued_;  // id -> key
  std::unordered_set<std::uint64_t> committed_;
};

struct AuditResult {
  std::uint64_t committed = 0;
  std::uint64_t lost = 0;               // committed, applied <1x on a replica
  std::uint64_t duplicated = 0;         // any write applied >1x on one node
  std::uint64_t replica_mismatches = 0; // key/value divergence within a shard
  std::uint64_t alien_values = 0;       // stored value from no issued write
  [[nodiscard]] bool ok() const {
    return lost == 0 && duplicated == 0 && replica_mismatches == 0 &&
           alien_values == 0;
  }
};

/// `servers` must cover every host the map names. Call only after quiesce
/// (all client calls returned and every server reports idle()).
inline AuditResult audit(const ShardMap& map,
                         const std::vector<const KvServer*>& servers,
                         const ShadowMap& shadow) {
  AuditResult r;
  r.committed = shadow.committed_writes();

  std::unordered_map<std::uint32_t, const KvServer*> by_host;
  for (const auto* s : servers) by_host[s->host().v] = s;
  auto server_at = [&](net::HostId h) { return by_host.at(h.v); };

  // 1+2: apply counts. Committed writes need exactly one application on both
  // replicas; every write (even abandoned ones) must never apply twice.
  for (const auto& [packed, key] : shadow.issued()) {
    const std::size_t shard = map.shard_of(key);
    const auto& prim_counts = server_at(map.primary(shard))->apply_counts();
    const auto& back_counts = server_at(map.backup(shard))->apply_counts();
    const auto pit = prim_counts.find(packed);
    const auto bit = back_counts.find(packed);
    const std::uint32_t p = pit == prim_counts.end() ? 0 : pit->second;
    const std::uint32_t b = bit == back_counts.end() ? 0 : bit->second;
    if (p > 1 || b > 1) ++r.duplicated;
    if (shadow.committed().contains(packed) && (p < 1 || b < 1)) ++r.lost;
  }

  // 3+4: walk every shard's primary store, compare against the backup, and
  // check provenance; then look for backup-only keys.
  for (std::size_t shard = 0; shard < map.num_shards(); ++shard) {
    const KvServer* prim = server_at(map.primary(shard));
    const KvServer* back = server_at(map.backup(shard));
    for (const auto& [key, value] : prim->store()) {
      if (map.shard_of(key) != shard) continue;
      const auto bit = back->store().find(key);
      if (bit == back->store().end() || bit->second != value) {
        ++r.replica_mismatches;
      }
      const auto writer = value_writer(value);
      if (!writer || !shadow.issued().contains(writer->packed())) {
        ++r.alien_values;
      }
    }
    for (const auto& [key, value] : back->store()) {
      if (map.shard_of(key) != shard) continue;
      if (!prim->store().contains(key)) ++r.replica_mismatches;
    }
  }
  return r;
}

// --- striped object class ----------------------------------------------------

/// Shadow for striped writes: one entry per issued striped PUT (tests and
/// benches write each key once, so id <-> key is one-to-one).
class StripedShadow {
 public:
  struct Issued {
    RequestId id;
    std::uint64_t key = 0;
    std::uint32_t object_len = 0;
  };
  void record_issued(const RequestId& id, std::uint64_t key,
                     std::uint32_t object_len) {
    issued_.emplace(id.packed(), Issued{id, key, object_len});
  }
  void record_committed(const RequestId& id) {
    committed_.insert(id.packed());
  }
  [[nodiscard]] const std::unordered_map<std::uint64_t, Issued>& issued()
      const {
    return issued_;
  }
  [[nodiscard]] const std::unordered_set<std::uint64_t>& committed() const {
    return committed_;
  }

 private:
  std::unordered_map<std::uint64_t, Issued> issued_;
  std::unordered_set<std::uint64_t> committed_;
};

struct StripedAuditResult {
  std::uint64_t committed = 0;
  std::uint64_t lost = 0;          // committed stripe not fully reconstructible
  std::uint64_t mismatched = 0;    // decoded bytes differ from what was written
  std::uint64_t duplicated = 0;    // a (writer, unit) applied >1x on one node
  std::uint64_t incomplete = 0;    // committed stripe short of a unit on a
                                   // live resolved holder (repair incomplete)
  std::uint64_t alien_units = 0;   // stored unit from no issued write
  [[nodiscard]] bool ok() const {
    return lost == 0 && mismatched == 0 && duplicated == 0 &&
           incomplete == 0 && alien_units == 0;
  }
};

/// Extended exactly-once audit over the striped object class. For every
/// committed striped write, under the final membership view (`dead`, null =
/// all live):
///   1. completeness — every unit the StripeMap currently resolves to a live
///      holder is actually present on that holder (repair converged);
///   2. no lost data — the stripe decodes from live units back to the exact
///      bytes make_value(id, len) produced;
///   3. exactly-once — no (writer, unit) pair was applied more than once on
///      any single node (transport retries + repair re-writes deduped);
///   4. provenance — every stored unit anywhere traces to an issued write.
/// Call after quiesce (repair machines idle).
inline StripedAuditResult audit_striped(
    const ec::StripeMap& map, const ec::RsCodec& codec,
    const std::vector<const StripedStore*>& stores,
    const StripedShadow& shadow,
    const std::function<bool(net::HostId)>& dead = {}) {
  StripedAuditResult r;
  r.committed = shadow.committed().size();

  std::unordered_map<std::uint32_t, const StripedStore*> by_host;
  for (const auto* s : stores) by_host[s->host().v] = s;

  for (const auto& [packed, w] : shadow.issued()) {
    if (!shadow.committed().contains(packed)) continue;
    const std::size_t group = map.group_of(w.key);
    const auto holders = map.resolve(group, dead);
    std::vector<std::vector<std::uint8_t>> units(map.n());
    std::vector<bool> have(map.n(), false);
    std::size_t found = 0;
    for (std::size_t u = 0; u < map.n(); ++u) {
      if (dead && dead(holders[u])) continue;  // unit died with its holder
      const auto hit = by_host.find(holders[u].v);
      if (hit == by_host.end()) continue;
      const auto& store = hit->second->store();
      bool present = false;
      const auto kit = store.find(w.key);
      if (kit != store.end()) {
        const auto uit = kit->second.find(static_cast<std::uint8_t>(u));
        if (uit != kit->second.end()) {
          units[u] = uit->second.bytes;
          have[u] = true;
          ++found;
          present = true;
        }
      }
      if (!present) ++r.incomplete;  // live resolved holder missing its unit
    }
    if (found < codec.k()) {
      ++r.lost;
      continue;
    }
    auto full = units;
    if (!codec.reconstruct(full, have)) {
      ++r.lost;
      continue;
    }
    const auto decoded = codec.join(full, w.object_len);
    if (decoded != make_value(w.id, w.object_len)) ++r.mismatched;
  }

  // 3+4: per-node unit scans.
  for (const auto* s : stores) {
    for (const auto& [packed, units] : s->apply_counts()) {
      for (const auto& [unit, count] : units) {
        if (count > 1) ++r.duplicated;
      }
    }
    for (const auto& [key, units] : s->store()) {
      for (const auto& [unit, rec] : units) {
        const auto it = shadow.issued().find(rec.writer.packed());
        if (it == shadow.issued().end() || it->second.key != key) {
          ++r.alien_units;
        }
      }
    }
  }
  return r;
}

}  // namespace sanfault::kv
