// Erasure-coded striped object class for the KV service.
//
// A striped PUT encodes the object with the shared ec::RsCodec into k data +
// m parity units and writes each unit to the holder the ec::StripeMap names
// for its parity group — k+m distinct servers in distinct fault domains. A
// striped GET fetches the k data units in parallel; when a holder is
// confirmed dead (SWIM oracle) or simply slow, it falls back to a DEGRADED
// read: fetch parity too, reconstruct from any k survivors, and return the
// exact original bytes without waiting for repair.
//
// Two components, both riding the existing vmmc::MsgEndpoint as pre-inbox
// taps (the primary-backup KvServer never sees unit traffic, and membership
// gossip chains through untouched):
//
//  * StripedStore  — server side. Owns this node's unit store, dedups unit
//    writes per (writer id, unit) so transport retries and repair re-writes
//    stay exactly-once, and answers unit fetches. apply_local() is the
//    repair machine's loopback for units it re-homes onto its own node.
//  * StripedClient — client-host side. put()/get() with per-unit retry
//    workers mirroring KvClientHost's timeout/backoff discipline, plus the
//    degraded-read state machine.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "ec/placement.hpp"
#include "ec/rs.hpp"
#include "kv/wire.hpp"
#include "obs/metrics.hpp"
#include "sim/awaitables.hpp"
#include "sim/process.hpp"
#include "sim/task.hpp"
#include "vmmc/rpc.hpp"

namespace sanfault::kv {

/// One stored stripe unit. `writer` is the original client write's id even
/// after repair re-materialises the unit on a spare — the extended
/// exactly-once audit keys provenance on it.
struct UnitRecord {
  RequestId writer;
  std::uint32_t object_len = 0;
  std::vector<std::uint8_t> bytes;
};

struct StripedStoreStats {
  std::uint64_t unit_puts = 0;       // first-time applies
  std::uint64_t dup_unit_puts = 0;   // retries / repair re-writes, re-acked
  std::uint64_t unit_gets = 0;
  std::uint64_t unit_not_found = 0;
  std::uint64_t bad_msgs = 0;
};

class StripedStore {
 public:
  StripedStore(sim::Scheduler& sched, vmmc::MsgEndpoint& msgs);
  ~StripedStore();

  /// Chain onto the endpoint tap. Call after any membership agent installed
  /// its own tap (unit messages are claimed first, the rest fall through).
  void start();

  /// Apply a unit write originating on this very node (repair loopback) —
  /// same dedup discipline as the wire path, no ack.
  void apply_local(const UnitPut& p);

  [[nodiscard]] net::HostId host() const { return msgs_.host(); }
  [[nodiscard]] const StripedStoreStats& stats() const { return stats_; }

  // --- audit / repair hooks -------------------------------------------------
  /// key -> unit index -> record, every unit this node currently holds.
  using Store = std::unordered_map<std::uint64_t, std::map<std::uint8_t, UnitRecord>>;
  [[nodiscard]] const Store& store() const { return store_; }
  /// Times each (writer id, unit) pair was applied here (dedup makes >1
  /// impossible unless the store itself is buggy — the audit checks).
  [[nodiscard]] const std::unordered_map<std::uint64_t,
                                         std::map<std::uint8_t, std::uint32_t>>&
  apply_counts() const {
    return apply_counts_;
  }

 private:
  bool handle(const vmmc::Msg& m);
  void on_unit_put(UnitPut p);
  sim::Process answer_get(UnitGet g);
  sim::Process post_to(std::uint32_t to, std::vector<std::uint8_t> bytes);

  sim::Scheduler& sched_;
  vmmc::MsgEndpoint& msgs_;
  Store store_;
  std::unordered_map<std::uint64_t, std::map<std::uint8_t, std::uint32_t>>
      apply_counts_;
  StripedStoreStats stats_;
};

struct StripedClientConfig {
  sim::Duration base_timeout = sim::milliseconds(3);
  sim::Duration max_timeout = sim::milliseconds(50);
  /// Per unit-write worker; writes are persistent like replication.
  int put_max_attempts = 12;
  /// Per unit-fetch attempt budget inside one read round (reads give up on a
  /// unit quickly — the degraded path covers for it).
  int get_attempts = 4;
  /// Full read rounds (fetch data, then parity, reconstruct) before kTimeout.
  int get_rounds = 3;
};

/// Result of one striped call, after all retries.
struct StripedOutcome {
  Status status = Status::kTimeout;
  RequestId id;
  std::vector<std::uint8_t> value;
  bool degraded = false;  // reconstructed from parity
  sim::Time issued_at = 0;
  sim::Time completed_at = 0;
  [[nodiscard]] bool ok() const {
    return status == Status::kOk || status == Status::kNotFound;
  }
  [[nodiscard]] sim::Duration latency() const {
    return completed_at - issued_at;
  }
};

struct StripedClientStats {
  std::uint64_t puts = 0;
  std::uint64_t puts_ok = 0;
  std::uint64_t gets = 0;
  std::uint64_t gets_ok = 0;
  std::uint64_t degraded_reads = 0;  // served via reconstruction
  std::uint64_t failed = 0;          // calls that exhausted all retries
  std::uint64_t unit_posts = 0;
  std::uint64_t unit_timeouts = 0;
  std::uint64_t dead_skips = 0;      // unit targets re-resolved off a corpse
  std::uint64_t stale_replies = 0;
  std::uint64_t bad_msgs = 0;
};

class StripedClient {
 public:
  StripedClient(sim::Scheduler& sched, vmmc::MsgEndpoint& msgs,
                const ec::StripeMap& map, const ec::RsCodec& codec,
                StripedClientConfig cfg = {});
  ~StripedClient();

  /// Chain onto the endpoint tap (after membership).
  void start();

  /// Membership oracle, same contract as KvClientHost::set_dead_hook: unit
  /// targets are re-resolved through the StripeMap before every attempt.
  using DeadHook = std::function<bool(net::HostId)>;
  void set_dead_hook(DeadHook dead) { dead_ = std::move(dead); }

  /// Encode `value` and write all k+m units. Commits (kOk) only when EVERY
  /// unit is acked by its holder — the stripe's m-failure tolerance starts
  /// whole. The caller owns id uniqueness.
  sim::Task<StripedOutcome> put(RequestId id, std::uint64_t key,
                                std::vector<std::uint8_t> value);

  /// Read the object; degrades to parity reconstruction when data units are
  /// unreachable. `id` only brands the outcome (unit fetches use an internal
  /// per-host fetch id space).
  sim::Task<StripedOutcome> get(RequestId id, std::uint64_t key);

  [[nodiscard]] net::HostId host() const { return msgs_.host(); }
  [[nodiscard]] const StripedClientStats& stats() const { return stats_; }

 private:
  struct PendingUnit {
    sim::Trigger done;
    bool replied = false;
    Status status = Status::kTimeout;
    UnitReply reply;  // fetches only
  };

  bool handle(const vmmc::Msg& m);
  /// Re-resolve the holder of `unit` under the current membership view.
  [[nodiscard]] net::HostId holder_of(std::size_t group, std::size_t unit);
  sim::Process put_unit(std::uint64_t packed_id, UnitPut put, char* ok,
                        sim::WaitGroup* wg);
  sim::Process fetch_unit(std::size_t group, UnitGet get, PendingUnit* pu,
                          sim::WaitGroup* wg);

  sim::Scheduler& sched_;
  vmmc::MsgEndpoint& msgs_;
  const ec::StripeMap& map_;
  const ec::RsCodec& codec_;
  StripedClientConfig cfg_;
  DeadHook dead_;
  // (request id, unit) -> worker, for both put acks and fetch replies; put
  // workers key on the writer id, fetch workers on the internal fetch id.
  std::unordered_map<std::uint64_t, std::map<std::uint8_t, PendingUnit*>>
      pending_;
  std::uint64_t fetch_seq_ = 0;
  StripedClientStats stats_;
  obs::Histogram* put_latency_ = nullptr;
  obs::Histogram* get_latency_ = nullptr;
};

}  // namespace sanfault::kv
