// KvServer: one node of the sharded, primary-backup replicated key-value
// service. Runs as sim-host coroutines over a vmmc::MsgEndpoint — the
// firmware underneath is the paper's retransmission + on-demand-mapping
// stack, which is exactly what this service exists to exercise.
//
// Roles per shard (from the ShardMap, statically known to everyone):
//  * primary: serves GETs from its store; for PUT/DEL it first replicates
//    synchronously to the shard's backup (retrying with backoff until the
//    backup acks — paths heal via re-mapping, so replication is persistent),
//    then applies locally and replies to the client. Applying only after the
//    backup ack keeps "backup state >= primary state" invariant, so a
//    committed write is always on both replicas;
//  * backup: applies Replicate messages (deduped by request id) and acks
//    every copy; serves GETs from its replica when clients fail over; and
//    proxies PUT/DEL back to the primary so write ordering stays
//    single-writer even when the client's path to the primary is dead.
//
// Exactly-once effect under an at-least-once transport: every request
// carries a RequestId; the primary's dedup table answers retries of
// completed writes with the cached reply and silently drops retries of
// in-flight ones (the client keeps retrying until the cached reply lands).
// The backup's dedup set makes replicate duplicates harmless. Per-request
// apply counts are exposed so the post-run audit can prove no committed
// write was lost or applied twice.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kv/shard_map.hpp"
#include "kv/wire.hpp"
#include "obs/metrics.hpp"
#include "sim/awaitables.hpp"
#include "sim/process.hpp"
#include "vmmc/rpc.hpp"

namespace sanfault::kv {

struct KvServerConfig {
  /// First replication-ack timeout; doubles per attempt up to the cap.
  sim::Duration repl_timeout = sim::milliseconds(3);
  sim::Duration repl_timeout_cap = sim::milliseconds(50);
  /// Replication is persistent (the fabric heals); this is a runaway guard.
  int repl_max_attempts = 64;
};

struct KvServerStats {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t dels = 0;
  std::uint64_t backup_reads = 0;      // GETs served from the replica
  std::uint64_t forwards = 0;          // writes proxied backup -> primary
  std::uint64_t not_owner = 0;
  std::uint64_t dup_requests = 0;      // retries of in-flight writes dropped
  std::uint64_t cached_replies = 0;    // retries answered from the dedup table
  std::uint64_t replicates_tx = 0;
  std::uint64_t replicates_rx = 0;
  std::uint64_t dup_replicates = 0;
  std::uint64_t repl_retries = 0;
  std::uint64_t repl_failures = 0;     // gave up after repl_max_attempts
  std::uint64_t bad_msgs = 0;
};

class KvServer {
 public:
  KvServer(sim::Scheduler& sched, vmmc::MsgEndpoint& msgs, const ShardMap& map,
           KvServerConfig cfg = {});
  ~KvServer();

  /// Spawn the serve loop. Call once, after the rig connected the mesh.
  void start();

  [[nodiscard]] net::HostId host() const { return msgs_.host(); }
  [[nodiscard]] const KvServerStats& stats() const { return stats_; }

  // --- audit hooks ---------------------------------------------------------
  /// The store (all shards this node holds, as primary or backup).
  [[nodiscard]] const std::unordered_map<std::uint64_t,
                                         std::vector<std::uint8_t>>&
  store() const {
    return store_;
  }
  /// Times each write request (RequestId::packed) was applied on this node.
  [[nodiscard]] const std::unordered_map<std::uint64_t, std::uint32_t>&
  apply_counts() const {
    return apply_counts_;
  }
  /// True when no write is awaiting replication (quiesce check).
  [[nodiscard]] bool idle() const {
    for (const auto& [backup, waiting] : repl_waiting_) {
      if (!waiting.empty()) return false;
    }
    return true;
  }

 private:
  struct DedupEntry {
    bool done = false;
    std::vector<std::uint8_t> reply;  // encoded, cached for retries
  };
  struct PendingRepl {
    sim::Trigger done;
    bool acked = false;    // backup confirmed the apply
    bool applied = false;  // applied locally, in seq order; result is valid
    Status result = Status::kOk;
    Request q;
  };
  /// Inbound replication channel from one primary: replicates are applied in
  /// contiguous repl_seq order; out-of-order arrivals wait in the stash and
  /// are only acked once applied (an ack means "the backup HAS this write").
  struct ReplicaChannel {
    std::uint64_t expected = 1;
    std::map<std::uint64_t, Replicate> stash;
  };

  sim::Process serve_loop();
  void dispatch(vmmc::Msg m);
  sim::Process handle_read(Request q, bool from_replica);
  sim::Process handle_write(Request q);
  sim::Process handle_forward(Request q);
  void on_replicate(net::HostId src, Replicate r);
  void apply_replicate(net::HostId src, Replicate r);
  /// Apply + complete acked writes for `backup` from the smallest seq up to
  /// the first unacked one. Keeping local applies in per-channel seq order
  /// mirrors the backup's apply order, so concurrent writes to one key land
  /// identically on both replicas no matter how acks interleave.
  void drain_acked(net::HostId backup);
  sim::Process send_repl_ack(net::HostId to, std::uint64_t seq);
  sim::Process post_reply(std::uint32_t to, std::vector<std::uint8_t> bytes);

  Status apply(Op op, std::uint64_t key, std::vector<std::uint8_t> value,
               const RequestId& id);

  sim::Scheduler& sched_;
  vmmc::MsgEndpoint& msgs_;
  const ShardMap& map_;
  KvServerConfig cfg_;

  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> store_;
  std::unordered_map<std::uint64_t, DedupEntry> dedup_;        // as primary
  std::unordered_set<std::uint64_t> backup_applied_;           // as backup
  std::unordered_map<std::uint64_t, std::uint32_t> apply_counts_;
  // As primary: per-backup channel seq + writes awaiting ack, seq-ordered.
  std::unordered_map<net::HostId, std::uint64_t> next_repl_seq_;
  std::unordered_map<net::HostId, std::map<std::uint64_t, PendingRepl*>>
      repl_waiting_;
  // As backup: one ordered channel per primary.
  std::unordered_map<net::HostId, ReplicaChannel> repl_rx_;
  KvServerStats stats_;
};

}  // namespace sanfault::kv
