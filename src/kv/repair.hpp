// kv::RepairMachine: online SNS-style reconstruction of stripe units lost to
// a confirmed host death (cortx-motr SNS-repair HLD, SNIPPETS.md §2).
//
// One machine runs on every striped server. When the node's SWIM agent
// confirms a death, on_confirm() walks the LOCAL unit store (sorted, for
// deterministic event order): any stripe with a local unit whose placement
// also named the dead host has lost a unit, and the live holder of the
// lowest-numbered surviving unit elects itself repair leader — no
// coordination, every node derives the same leader from the same StripeMap +
// membership view. The leader's worker then, stripe by stripe:
//
//   1. gathers k units (its own from the local store for free, the rest
//      fetched from surviving holders),
//   2. reconstructs the lost unit(s) with the shared RsCodec,
//   3. writes each onto the spare the StripeMap re-homed it to (a live
//      server in a different fault domain), carrying the ORIGINAL writer's
//      request id so the exactly-once audit sees repaired units as the same
//      logical write.
//
// Every fetched and written byte first takes from a token bucket
// (bandwidth_bytes_per_sec, burst_bytes) — repair trickles along under a
// configurable cap instead of stampeding the fabric foreground traffic is
// using; bench_repair sweeps this cap against foreground goodput.
//
// Known limitation (by design, documented in DESIGN.md §13): the leader rule
// re-elects per confirm, but a stripe whose leader dies mid-queue before
// finishing is only re-covered if ANOTHER death triggers re-enumeration;
// tests and benches kill hosts that are not repair leaders of unfinished
// work. Metrics land in the obs registry under ec.repair_*.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "ec/placement.hpp"
#include "ec/rs.hpp"
#include "kv/striped.hpp"
#include "kv/wire.hpp"
#include "obs/metrics.hpp"
#include "sim/awaitables.hpp"
#include "sim/process.hpp"
#include "sim/task.hpp"
#include "vmmc/rpc.hpp"

namespace sanfault::kv {

struct RepairConfig {
  /// Token-bucket rate for repair traffic (fetched + written unit bytes).
  /// 0 = unthrottled.
  std::uint64_t bandwidth_bytes_per_sec = 64ull * 1024 * 1024;
  std::uint64_t burst_bytes = 64ull * 1024;
  sim::Duration rpc_timeout = sim::milliseconds(3);
  sim::Duration rpc_timeout_cap = sim::milliseconds(50);
  int rpc_max_attempts = 24;
  /// A stripe that cannot be repaired yet (survivors unreachable) re-queues
  /// with a delay, up to this many rounds, then counts as abandoned.
  int stripe_max_rounds = 8;
  sim::Duration requeue_delay = sim::milliseconds(5);
  /// Record a per-event text log (determinism tests byte-compare it).
  bool log_events = false;
};

struct RepairStats {
  std::uint64_t confirms = 0;          // deaths this node reacted to
  std::uint64_t stripes_enqueued = 0;  // stripes this node led repair for
  std::uint64_t stripes_repaired = 0;
  std::uint64_t stripes_abandoned = 0;
  std::uint64_t units_rebuilt = 0;
  std::uint64_t bytes_fetched = 0;     // survivor units pulled over the wire
  std::uint64_t bytes_written = 0;     // rebuilt units pushed to spares
  std::uint64_t fetch_retries = 0;
  std::uint64_t put_retries = 0;
  std::uint64_t throttle_waits = 0;    // takes that had to sleep
  std::uint64_t throttle_wait_ns = 0;
};

class RepairMachine {
 public:
  RepairMachine(sim::Scheduler& sched, vmmc::MsgEndpoint& msgs,
                StripedStore& store, const ec::StripeMap& map,
                const ec::RsCodec& codec, RepairConfig cfg = {});
  ~RepairMachine();

  /// Chain onto the endpoint tap (fetch replies / spare-write acks) and
  /// spawn the repair worker. Call after the membership agent's start().
  void start();

  /// Membership oracle (same contract as StripedClient's).
  using DeadHook = std::function<bool(net::HostId)>;
  void set_dead_hook(DeadHook dead) { dead_ = std::move(dead); }

  /// SWIM confirm hook: enumerate local stripes that lost a unit on `dead`
  /// and enqueue the ones this node leads. Cheap (bookkeeping only); the
  /// worker does the traffic.
  void on_confirm(net::HostId dead, sim::Time at);

  /// No repair queued, in flight, or awaiting a requeue delay (quiesce /
  /// convergence check).
  [[nodiscard]] bool idle() const {
    return queue_.empty() && !inflight_ && requeues_ == 0;
  }
  [[nodiscard]] net::HostId host() const { return msgs_.host(); }
  [[nodiscard]] const RepairStats& stats() const { return stats_; }
  /// Event log (empty unless cfg.log_events).
  [[nodiscard]] const std::vector<std::string>& log() const { return log_; }

 private:
  struct Job {
    std::uint64_t key = 0;
    net::HostId dead;
    int round = 0;
  };
  struct PendingRpc {
    sim::Trigger done;
    std::uint8_t unit = 0;  // expected unit; mismatched acks are stale
    bool replied = false;
    Status status = Status::kTimeout;
    UnitReply reply;
  };

  bool handle(const vmmc::Msg& m);
  sim::Process worker();
  /// One repair attempt for one stripe; false = retryable failure.
  sim::Task<bool> repair_one(const Job& job);
  /// Fetch `unit` of `key` from `from`; false after all retries.
  sim::Task<bool> fetch_remote(std::uint64_t key, std::uint8_t unit,
                               net::HostId from, UnitReply* out);
  /// Write a rebuilt unit to its (possibly remote) holder.
  sim::Task<bool> write_unit(UnitPut put, net::HostId to);
  /// Take `bytes` from the token bucket, sleeping while it refills.
  sim::Task<void> throttle_take(std::uint64_t bytes);
  void refill();
  sim::Process requeue_later(Job job);
  void note(std::string line);

  sim::Scheduler& sched_;
  vmmc::MsgEndpoint& msgs_;
  StripedStore& store_;
  const ec::StripeMap& map_;
  const ec::RsCodec& codec_;
  RepairConfig cfg_;
  DeadHook dead_;

  std::deque<Job> queue_;
  sim::Trigger work_;
  bool inflight_ = false;
  int requeues_ = 0;  // jobs sleeping before re-entering the queue
  std::uint64_t rpc_seq_ = 0;
  std::unordered_map<std::uint64_t, PendingRpc*> pending_;
  // Token bucket; signed so a burst-capped take may drive it into debt.
  std::int64_t tokens_ = 0;
  sim::Time last_refill_ = 0;
  RepairStats stats_;
  std::vector<std::string> log_;
  obs::Gauge* queue_depth_ = nullptr;
  obs::Histogram* stripe_latency_ = nullptr;
};

}  // namespace sanfault::kv
