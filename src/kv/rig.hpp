// KvRig: one-stop assembly of a complete KV service deployment on the
// simulated SAN — cluster (topology, NICs, firmware), one VMMC endpoint and
// message endpoint per host, KvServers on the first `num_servers` hosts,
// KvClientHosts on the next `num_client_hosts`, and the shared ShardMap.
// The constructor also runs the full import-handshake mesh to completion,
// so a freshly built rig is immediately ready to serve.
//
// Benchmarks, tests and examples all build their service runs from this,
// mirroring how harness::Cluster anchors the paper-figure experiments.
#pragma once

#include <cassert>
#include <memory>
#include <vector>

#include "ec/placement.hpp"
#include "ec/rs.hpp"
#include "harness/cluster.hpp"
#include "kv/client.hpp"
#include "kv/repair.hpp"
#include "kv/server.hpp"
#include "kv/shard_map.hpp"
#include "kv/striped.hpp"
#include "membership/fault_domains.hpp"
#include "membership/swim.hpp"
#include "sim/process.hpp"
#include "vmmc/endpoint.hpp"
#include "vmmc/rpc.hpp"

namespace sanfault::kv {

struct KvRigConfig {
  std::size_t num_servers = 4;
  std::size_t num_client_hosts = 4;
  std::size_t num_shards = 32;
  std::uint64_t map_seed = 0x5a4dull;
  /// Per-sender ring partition in every host's message endpoint; one
  /// message (request incl. value) must fit.
  std::size_t ring_per_peer = 64 * 1024;
  KvServerConfig server;
  /// Cluster knobs; num_hosts is overwritten with servers + client hosts.
  harness::ClusterConfig cluster;

  /// Run a SWIM membership agent on every host (src/membership), gossiping
  /// over the same message endpoints the KV protocol uses. A host's agent
  /// confirming a death proactively excludes the dead peer at its firmware
  /// (flushing the mapper path cache and pending traffic) and lets its KV
  /// clients fail over immediately instead of waiting out timeouts.
  /// Requires reliable firmware; implies a full gossip mesh.
  bool membership = false;
  membership::SwimConfig swim;
  /// Place each shard's backup in a different fault domain (pod) than its
  /// primary (harness::Cluster::host_pods feeds the ShardMap). Pure
  /// construction-time policy: only changes placement on multi-pod fabrics.
  bool pod_aware_placement = false;

  /// Run the erasure-coded striped object class (src/ec) alongside the
  /// primary-backup service: a StripedStore + RepairMachine on every server
  /// and a StripedClient on every client host, sharing the same message
  /// endpoints via chained taps. Degraded reads and on-confirm repair need
  /// `membership` on; without it everything is simply presumed live.
  bool striped = false;
  ec::StripeMapConfig stripe;
  StripedClientConfig striped_client;
  RepairConfig repair;
};

class KvRig {
 public:
  explicit KvRig(KvRigConfig cfg)
      : cfg_(fix(std::move(cfg))), c(cfg_.cluster) {
    const std::size_t n = c.size();
    domains = std::make_unique<membership::FaultDomainTree>(
        membership::FaultDomainTree::from_pods(c.host_pods));
    std::vector<net::HostId> server_hosts(
        c.hosts.begin(),
        c.hosts.begin() + static_cast<std::ptrdiff_t>(cfg_.num_servers));
    std::vector<std::uint32_t> server_pods;
    if (cfg_.pod_aware_placement) {
      server_pods.assign(
          c.host_pods.begin(),
          c.host_pods.begin() + static_cast<std::ptrdiff_t>(cfg_.num_servers));
    }
    map = std::make_unique<ShardMap>(std::move(server_hosts), cfg_.num_shards,
                                     /*vnodes=*/16, cfg_.map_seed,
                                     std::move(server_pods));

    for (std::size_t i = 0; i < n; ++i) {
      eps.push_back(std::make_unique<vmmc::Endpoint>(c.sched, c.nic(i)));
      msgs.push_back(std::make_unique<vmmc::MsgEndpoint>(
          c.sched, *eps.back(), cfg_.ring_per_peer, /*max_peers=*/n));
    }
    for (std::size_t i = 0; i < cfg_.num_servers; ++i) {
      servers.push_back(
          std::make_unique<KvServer>(c.sched, *msgs[i], *map, cfg_.server));
    }
    for (std::size_t i = 0; i < cfg_.num_client_hosts; ++i) {
      clients.push_back(std::make_unique<KvClientHost>(
          c.sched, *msgs[cfg_.num_servers + i], *map));
    }

    if (cfg_.striped) {
      std::vector<net::HostId> stripe_servers(
          c.hosts.begin(),
          c.hosts.begin() + static_cast<std::ptrdiff_t>(cfg_.num_servers));
      std::vector<std::uint32_t> stripe_pods(
          c.host_pods.begin(),
          c.host_pods.begin() + static_cast<std::ptrdiff_t>(cfg_.num_servers));
      stripe_map = std::make_unique<ec::StripeMap>(
          std::move(stripe_servers), std::move(stripe_pods), cfg_.stripe);
      codec = std::make_unique<ec::RsCodec>(cfg_.stripe.k, cfg_.stripe.m);
      for (std::size_t i = 0; i < cfg_.num_servers; ++i) {
        stores.push_back(
            std::make_unique<StripedStore>(c.sched, *msgs[i]));
        repairs.push_back(std::make_unique<RepairMachine>(
            c.sched, *msgs[i], *stores.back(), *stripe_map, *codec,
            cfg_.repair));
      }
      for (std::size_t i = 0; i < cfg_.num_client_hosts; ++i) {
        striped_clients.push_back(std::make_unique<StripedClient>(
            c.sched, *msgs[cfg_.num_servers + i], *stripe_map, *codec,
            cfg_.striped_client));
      }
    }

    connect_mesh();
    for (auto& s : servers) s->start();
    for (auto& ch : clients) ch->start();

    if (cfg_.membership) {
      assert(cfg_.cluster.fw == harness::FirmwareKind::kReliable &&
             "membership exclusion needs the reliable firmware");
      for (std::size_t i = 0; i < n; ++i) {
        agents.push_back(std::make_unique<membership::SwimAgent>(
            c.sched, *msgs[i], c.hosts, cfg_.swim));
        agents.back()->set_confirm_hook(
            [this, i](net::HostId dead, sim::Time) {
              c.rel(i).exclude_peer(dead);
            });
        if (cfg_.striped && i < cfg_.num_servers) {
          RepairMachine* rm = repairs[i].get();
          agents.back()->add_confirm_hook(
              [rm](net::HostId dead, sim::Time at) {
                rm->on_confirm(dead, at);
              });
        }
      }
      for (std::size_t k = 0; k < clients.size(); ++k) {
        membership::SwimAgent* a = agents[cfg_.num_servers + k].get();
        clients[k]->set_dead_hook(
            [a](net::HostId h) { return a->confirmed_dead(h); });
      }
      if (cfg_.striped) {
        for (std::size_t i = 0; i < cfg_.num_servers; ++i) {
          membership::SwimAgent* a = agents[i].get();
          repairs[i]->set_dead_hook(
              [a](net::HostId h) { return a->confirmed_dead(h); });
        }
        for (std::size_t k = 0; k < striped_clients.size(); ++k) {
          membership::SwimAgent* a = agents[cfg_.num_servers + k].get();
          striped_clients[k]->set_dead_hook(
              [a](net::HostId h) { return a->confirmed_dead(h); });
        }
      }
      for (auto& a : agents) a->start();
    }

    // Striped taps chain on AFTER membership installed its gossip tap, so
    // unit traffic is claimed first and everything else falls through.
    if (cfg_.striped) {
      for (auto& st : stores) st->start();
      for (auto& rm : repairs) rm->start();
      for (auto& sc : striped_clients) sc->start();
    }
  }

  [[nodiscard]] const KvRigConfig& config() const { return cfg_; }
  [[nodiscard]] KvClientHost& client(std::size_t i) { return *clients.at(i); }
  [[nodiscard]] KvServer& server(std::size_t i) { return *servers.at(i); }
  [[nodiscard]] std::vector<const KvServer*> server_view() const {
    std::vector<const KvServer*> v;
    for (const auto& s : servers) v.push_back(s.get());
    return v;
  }
  [[nodiscard]] std::vector<KvClientHost*> client_view() {
    std::vector<KvClientHost*> v;
    for (const auto& ch : clients) v.push_back(ch.get());
    return v;
  }
  /// True once every server has no write awaiting replication and no repair
  /// machine has queued or in-flight work.
  [[nodiscard]] bool servers_idle() const {
    for (const auto& s : servers) {
      if (!s->idle()) return false;
    }
    for (const auto& rm : repairs) {
      if (!rm->idle()) return false;
    }
    return true;
  }

  [[nodiscard]] StripedClient& striped_client(std::size_t i) {
    return *striped_clients.at(i);
  }
  [[nodiscard]] std::vector<const StripedStore*> store_view() const {
    std::vector<const StripedStore*> v;
    for (const auto& st : stores) v.push_back(st.get());
    return v;
  }

  /// Every host's reliable firmware, in host order. Chaos campaigns use
  /// this to bind NIC resets and recovery-event hooks per node.
  [[nodiscard]] std::vector<firmware::ReliableFirmware*> rel_view() {
    std::vector<firmware::ReliableFirmware*> v;
    for (std::size_t i = 0; i < c.size(); ++i) v.push_back(&c.rel(i));
    return v;
  }

  /// Let in-flight replication and retransmission settle: run `settle`, then
  /// keep granting 50 ms slices until every server is idle (bounded by
  /// `max_rounds`), then one final `settle`.
  void quiesce(sim::Duration settle = sim::milliseconds(100),
               int max_rounds = 64) {
    c.sched.run_for(settle);
    for (int i = 0; i < max_rounds && !servers_idle(); ++i) {
      c.sched.run_for(sim::milliseconds(50));
    }
    c.sched.run_for(settle);
  }

  KvRigConfig cfg_;
  harness::Cluster c;
  std::unique_ptr<membership::FaultDomainTree> domains;
  std::unique_ptr<ShardMap> map;
  std::vector<std::unique_ptr<vmmc::Endpoint>> eps;
  std::vector<std::unique_ptr<vmmc::MsgEndpoint>> msgs;
  std::vector<std::unique_ptr<KvServer>> servers;
  std::vector<std::unique_ptr<KvClientHost>> clients;
  /// One SWIM agent per host, host order (empty unless cfg.membership).
  std::vector<std::unique_ptr<membership::SwimAgent>> agents;
  /// Striped object class (empty unless cfg.striped).
  std::unique_ptr<ec::StripeMap> stripe_map;
  std::unique_ptr<ec::RsCodec> codec;
  std::vector<std::unique_ptr<StripedStore>> stores;     // per server
  std::vector<std::unique_ptr<RepairMachine>> repairs;   // per server
  std::vector<std::unique_ptr<StripedClient>> striped_clients;

 private:
  static KvRigConfig fix(KvRigConfig cfg) {
    cfg.cluster.num_hosts = cfg.num_servers + cfg.num_client_hosts;
    return cfg;
  }

  // Servers talk to everyone (replication, forwards, replies); client hosts
  // only ever post to servers — unless membership gossip is on, in which
  // case every host probes every other and the mesh must be full.
  void connect_mesh() {
    bool done = false;
    [](KvRig& r, bool& flag) -> sim::Process {
      const std::size_t s = r.cfg_.num_servers;
      const std::size_t n = r.c.size();
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t targets = (i < s || r.cfg_.membership) ? n : s;
        for (std::size_t j = 0; j < targets; ++j) {
          if (i == j) continue;
          const bool ok = co_await r.msgs[i]->connect(r.c.hosts[j]);
          assert(ok);
          (void)ok;
        }
      }
      flag = true;
    }(*this, done);
    while (!done && c.sched.step()) {
    }
    assert(done && "mesh connect did not complete");
  }
};

}  // namespace sanfault::kv
