// Wire format for the replicated key-value service.
//
// Four message kinds ride vmmc::MsgEndpoint messages (first byte = type):
//   kRequest   client -> server        GET/PUT/DEL
//   kReply     server -> client        status + value
//   kReplicate primary -> backup       synchronous replication of a write
//   kReplAck   backup -> primary       replication acknowledged
//
// Every request carries an idempotency id (client id, per-client sequence).
// The transport is at-least-once across path-failure generation restarts, so
// servers dedup on that id and replies/replicates may arrive duplicated;
// receivers match on the id, never on arrival count.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "net/ids.hpp"

namespace sanfault::kv {

enum class MsgType : std::uint8_t {
  kRequest = 1,
  kReply = 2,
  kReplicate = 3,
  kReplAck = 4,
  // Erasure-coded striped object class (src/ec): one message pair per stripe
  // unit. Carried on the same rings, intercepted by StripedStore/StripedClient
  // taps before the primary-backup dispatch loop ever sees them.
  kUnitPut = 5,
  kUnitAck = 6,
  kUnitGet = 7,
  kUnitReply = 8,
};

enum class Op : std::uint8_t { kGet = 1, kPut = 2, kDel = 3 };

enum class Status : std::uint8_t {
  kOk = 1,
  kNotFound = 2,   // GET/DEL of an absent key (still a committed outcome)
  kNotOwner = 3,   // receiver is neither primary nor backup of the shard
  kTimeout = 4,    // client-side: all retries exhausted (never on the wire)
};

/// Idempotency key: globally-unique client id + per-client sequence number.
struct RequestId {
  std::uint64_t client = 0;
  std::uint64_t seq = 0;
  auto operator<=>(const RequestId&) const = default;
  /// Packed form used as a hash-map key (client ids stay well under 2^32).
  [[nodiscard]] std::uint64_t packed() const { return (client << 32) | seq; }
};

struct Request {
  Op op = Op::kGet;
  RequestId id;
  std::uint64_t key = 0;
  std::uint32_t reply_to = 0;  // HostId of the client host to answer
  std::vector<std::uint8_t> value;  // PUT payload
};

struct Reply {
  RequestId id;
  Status status = Status::kOk;
  std::vector<std::uint8_t> value;  // GET result
};

struct Replicate {
  RequestId id;      // of the client write being replicated (dedup key)
  std::uint64_t repl_seq = 0;  // primary-chosen, echoed in the ack
  Op op = Op::kPut;
  std::uint64_t key = 0;
  std::vector<std::uint8_t> value;
};

struct ReplAck {
  std::uint64_t repl_seq = 0;
};

/// One stripe unit of a striped PUT (client -> holder, or repair -> spare).
/// `id` is the ORIGINAL writer's request id even when the repair machine
/// re-materialises the unit — the exactly-once audit keys on it.
struct UnitPut {
  RequestId id;
  std::uint64_t key = 0;
  std::uint8_t unit = 0;
  std::uint32_t object_len = 0;  // pre-encode length; join() needs it
  std::uint32_t reply_to = 0;    // HostId to ack
  std::vector<std::uint8_t> value;
};

struct UnitAck {
  RequestId id;
  std::uint64_t key = 0;
  std::uint8_t unit = 0;
  Status status = Status::kOk;
};

/// Fetch one stripe unit (degraded read or repair source read).
struct UnitGet {
  RequestId id;  // of the FETCH (reader's id space), not the writer's
  std::uint64_t key = 0;
  std::uint8_t unit = 0;
  std::uint32_t reply_to = 0;
};

struct UnitReply {
  RequestId id;
  std::uint64_t key = 0;
  std::uint8_t unit = 0;
  Status status = Status::kOk;
  RequestId writer;              // original writer id (audit provenance)
  std::uint32_t object_len = 0;
  std::vector<std::uint8_t> value;
};

// --- byte-level encode/decode ----------------------------------------------

namespace detail {

inline void put_u8(std::vector<std::uint8_t>& b, std::uint8_t v) {
  b.push_back(v);
}
inline void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
inline void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
inline void put_bytes(std::vector<std::uint8_t>& b,
                      const std::vector<std::uint8_t>& v) {
  put_u32(b, static_cast<std::uint32_t>(v.size()));
  b.insert(b.end(), v.begin(), v.end());
}

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& b) : b_(b) {}
  [[nodiscard]] bool ok() const { return ok_; }
  std::uint8_t u8() { return ok_ && pos_ < b_.size() ? b_[pos_++] : fail8(); }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }
  std::vector<std::uint8_t> bytes() {
    const std::uint32_t n = u32();
    if (!ok_ || pos_ + n > b_.size()) {
      ok_ = false;
      return {};
    }
    std::vector<std::uint8_t> v(b_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                b_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return v;
  }

 private:
  std::uint8_t fail8() {
    ok_ = false;
    return 0;
  }
  const std::vector<std::uint8_t>& b_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace detail

inline MsgType peek_type(const std::vector<std::uint8_t>& b) {
  return b.empty() ? static_cast<MsgType>(0) : static_cast<MsgType>(b[0]);
}

inline std::vector<std::uint8_t> encode(const Request& r) {
  std::vector<std::uint8_t> b;
  b.reserve(38 + r.value.size());
  detail::put_u8(b, static_cast<std::uint8_t>(MsgType::kRequest));
  detail::put_u8(b, static_cast<std::uint8_t>(r.op));
  detail::put_u64(b, r.id.client);
  detail::put_u64(b, r.id.seq);
  detail::put_u64(b, r.key);
  detail::put_u32(b, r.reply_to);
  detail::put_bytes(b, r.value);
  return b;
}

inline std::vector<std::uint8_t> encode(const Reply& r) {
  std::vector<std::uint8_t> b;
  b.reserve(26 + r.value.size());
  detail::put_u8(b, static_cast<std::uint8_t>(MsgType::kReply));
  detail::put_u8(b, static_cast<std::uint8_t>(r.status));
  detail::put_u64(b, r.id.client);
  detail::put_u64(b, r.id.seq);
  detail::put_bytes(b, r.value);
  return b;
}

inline std::vector<std::uint8_t> encode(const Replicate& r) {
  std::vector<std::uint8_t> b;
  b.reserve(38 + r.value.size());
  detail::put_u8(b, static_cast<std::uint8_t>(MsgType::kReplicate));
  detail::put_u8(b, static_cast<std::uint8_t>(r.op));
  detail::put_u64(b, r.id.client);
  detail::put_u64(b, r.id.seq);
  detail::put_u64(b, r.repl_seq);
  detail::put_u64(b, r.key);
  detail::put_bytes(b, r.value);
  return b;
}

inline std::vector<std::uint8_t> encode(const ReplAck& r) {
  std::vector<std::uint8_t> b;
  b.reserve(9);
  detail::put_u8(b, static_cast<std::uint8_t>(MsgType::kReplAck));
  detail::put_u64(b, r.repl_seq);
  return b;
}

inline std::vector<std::uint8_t> encode(const UnitPut& u) {
  std::vector<std::uint8_t> b;
  b.reserve(38 + u.value.size());
  detail::put_u8(b, static_cast<std::uint8_t>(MsgType::kUnitPut));
  detail::put_u64(b, u.id.client);
  detail::put_u64(b, u.id.seq);
  detail::put_u64(b, u.key);
  detail::put_u8(b, u.unit);
  detail::put_u32(b, u.object_len);
  detail::put_u32(b, u.reply_to);
  detail::put_bytes(b, u.value);
  return b;
}

inline std::vector<std::uint8_t> encode(const UnitAck& u) {
  std::vector<std::uint8_t> b;
  b.reserve(27);
  detail::put_u8(b, static_cast<std::uint8_t>(MsgType::kUnitAck));
  detail::put_u64(b, u.id.client);
  detail::put_u64(b, u.id.seq);
  detail::put_u64(b, u.key);
  detail::put_u8(b, u.unit);
  detail::put_u8(b, static_cast<std::uint8_t>(u.status));
  return b;
}

inline std::vector<std::uint8_t> encode(const UnitGet& u) {
  std::vector<std::uint8_t> b;
  b.reserve(30);
  detail::put_u8(b, static_cast<std::uint8_t>(MsgType::kUnitGet));
  detail::put_u64(b, u.id.client);
  detail::put_u64(b, u.id.seq);
  detail::put_u64(b, u.key);
  detail::put_u8(b, u.unit);
  detail::put_u32(b, u.reply_to);
  return b;
}

inline std::vector<std::uint8_t> encode(const UnitReply& u) {
  std::vector<std::uint8_t> b;
  b.reserve(51 + u.value.size());
  detail::put_u8(b, static_cast<std::uint8_t>(MsgType::kUnitReply));
  detail::put_u64(b, u.id.client);
  detail::put_u64(b, u.id.seq);
  detail::put_u64(b, u.key);
  detail::put_u8(b, u.unit);
  detail::put_u8(b, static_cast<std::uint8_t>(u.status));
  detail::put_u64(b, u.writer.client);
  detail::put_u64(b, u.writer.seq);
  detail::put_u32(b, u.object_len);
  detail::put_bytes(b, u.value);
  return b;
}

inline std::optional<UnitPut> decode_unit_put(
    const std::vector<std::uint8_t>& b) {
  detail::Reader r(b);
  if (static_cast<MsgType>(r.u8()) != MsgType::kUnitPut) return std::nullopt;
  UnitPut u;
  u.id.client = r.u64();
  u.id.seq = r.u64();
  u.key = r.u64();
  u.unit = r.u8();
  u.object_len = r.u32();
  u.reply_to = r.u32();
  u.value = r.bytes();
  if (!r.ok()) return std::nullopt;
  return u;
}

inline std::optional<UnitAck> decode_unit_ack(
    const std::vector<std::uint8_t>& b) {
  detail::Reader r(b);
  if (static_cast<MsgType>(r.u8()) != MsgType::kUnitAck) return std::nullopt;
  UnitAck u;
  u.id.client = r.u64();
  u.id.seq = r.u64();
  u.key = r.u64();
  u.unit = r.u8();
  u.status = static_cast<Status>(r.u8());
  if (!r.ok()) return std::nullopt;
  return u;
}

inline std::optional<UnitGet> decode_unit_get(
    const std::vector<std::uint8_t>& b) {
  detail::Reader r(b);
  if (static_cast<MsgType>(r.u8()) != MsgType::kUnitGet) return std::nullopt;
  UnitGet u;
  u.id.client = r.u64();
  u.id.seq = r.u64();
  u.key = r.u64();
  u.unit = r.u8();
  u.reply_to = r.u32();
  if (!r.ok()) return std::nullopt;
  return u;
}

inline std::optional<UnitReply> decode_unit_reply(
    const std::vector<std::uint8_t>& b) {
  detail::Reader r(b);
  if (static_cast<MsgType>(r.u8()) != MsgType::kUnitReply) return std::nullopt;
  UnitReply u;
  u.id.client = r.u64();
  u.id.seq = r.u64();
  u.key = r.u64();
  u.unit = r.u8();
  u.status = static_cast<Status>(r.u8());
  u.writer.client = r.u64();
  u.writer.seq = r.u64();
  u.object_len = r.u32();
  u.value = r.bytes();
  if (!r.ok()) return std::nullopt;
  return u;
}

inline std::optional<Request> decode_request(const std::vector<std::uint8_t>& b) {
  detail::Reader r(b);
  if (static_cast<MsgType>(r.u8()) != MsgType::kRequest) return std::nullopt;
  Request q;
  q.op = static_cast<Op>(r.u8());
  q.id.client = r.u64();
  q.id.seq = r.u64();
  q.key = r.u64();
  q.reply_to = r.u32();
  q.value = r.bytes();
  if (!r.ok()) return std::nullopt;
  return q;
}

inline std::optional<Reply> decode_reply(const std::vector<std::uint8_t>& b) {
  detail::Reader r(b);
  if (static_cast<MsgType>(r.u8()) != MsgType::kReply) return std::nullopt;
  Reply p;
  p.status = static_cast<Status>(r.u8());
  p.id.client = r.u64();
  p.id.seq = r.u64();
  p.value = r.bytes();
  if (!r.ok()) return std::nullopt;
  return p;
}

inline std::optional<Replicate> decode_replicate(
    const std::vector<std::uint8_t>& b) {
  detail::Reader r(b);
  if (static_cast<MsgType>(r.u8()) != MsgType::kReplicate) return std::nullopt;
  Replicate p;
  p.op = static_cast<Op>(r.u8());
  p.id.client = r.u64();
  p.id.seq = r.u64();
  p.repl_seq = r.u64();
  p.key = r.u64();
  p.value = r.bytes();
  if (!r.ok()) return std::nullopt;
  return p;
}

inline std::optional<ReplAck> decode_repl_ack(
    const std::vector<std::uint8_t>& b) {
  detail::Reader r(b);
  if (static_cast<MsgType>(r.u8()) != MsgType::kReplAck) return std::nullopt;
  ReplAck p;
  p.repl_seq = r.u64();
  if (!r.ok()) return std::nullopt;
  return p;
}

}  // namespace sanfault::kv
