#include "kv/striped.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

namespace sanfault::kv {

// --- StripedStore -----------------------------------------------------------

StripedStore::StripedStore(sim::Scheduler& sched, vmmc::MsgEndpoint& msgs)
    : sched_(sched), msgs_(msgs) {
  obs::Registry& reg = obs::Registry::of(sched_);
  const std::string node = "{node=" + std::to_string(msgs_.host().v) + "}";
  reg.add_collector(this, [this, &reg, node] {
    const StripedStoreStats& s = stats_;
    reg.counter("ec.store_unit_puts" + node, "units").set(s.unit_puts);
    reg.counter("ec.store_dup_unit_puts" + node, "units").set(s.dup_unit_puts);
    reg.counter("ec.store_unit_gets" + node, "units").set(s.unit_gets);
    reg.counter("ec.store_unit_not_found" + node, "units")
        .set(s.unit_not_found);
    reg.counter("ec.store_bad_msgs" + node, "messages").set(s.bad_msgs);
    std::int64_t held = 0;
    for (const auto& [key, units] : store_) {
      held += static_cast<std::int64_t>(units.size());
    }
    reg.gauge("ec.store_units_held" + node, "units").set(held);
  });
}

StripedStore::~StripedStore() {
  if (auto* r = obs::Registry::find(sched_)) r->remove_collectors(this);
}

void StripedStore::start() {
  vmmc::MsgEndpoint::Tap prev = msgs_.tap();
  msgs_.set_tap([this, prev = std::move(prev)](const vmmc::Msg& m) {
    if (handle(m)) return true;
    return prev ? prev(m) : false;
  });
}

bool StripedStore::handle(const vmmc::Msg& m) {
  switch (peek_type(m.bytes)) {
    case MsgType::kUnitPut: {
      auto p = decode_unit_put(m.bytes);
      if (!p) {
        ++stats_.bad_msgs;
        return true;
      }
      on_unit_put(std::move(*p));
      return true;
    }
    case MsgType::kUnitGet: {
      auto g = decode_unit_get(m.bytes);
      if (!g) {
        ++stats_.bad_msgs;
        return true;
      }
      answer_get(std::move(*g));
      return true;
    }
    default:
      return false;
  }
}

void StripedStore::on_unit_put(UnitPut p) {
  UnitAck ack{p.id, p.key, p.unit, Status::kOk};
  auto& count = apply_counts_[p.id.packed()][p.unit];
  if (count > 0) {
    // Transport retry or repair re-write of a unit we already hold: re-ack
    // (the earlier ack may be what got lost) without re-applying.
    ++stats_.dup_unit_puts;
  } else {
    ++count;
    ++stats_.unit_puts;
    store_[p.key][p.unit] = UnitRecord{p.id, p.object_len, std::move(p.value)};
  }
  post_to(p.reply_to, encode(ack));
}

void StripedStore::apply_local(const UnitPut& p) {
  auto& count = apply_counts_[p.id.packed()][p.unit];
  if (count > 0) {
    ++stats_.dup_unit_puts;
    return;
  }
  ++count;
  ++stats_.unit_puts;
  store_[p.key][p.unit] = UnitRecord{p.id, p.object_len, p.value};
}

sim::Process StripedStore::answer_get(UnitGet g) {
  ++stats_.unit_gets;
  UnitReply rep;
  rep.id = g.id;
  rep.key = g.key;
  rep.unit = g.unit;
  rep.status = Status::kNotFound;
  const auto kit = store_.find(g.key);
  if (kit != store_.end()) {
    const auto uit = kit->second.find(g.unit);
    if (uit != kit->second.end()) {
      rep.status = Status::kOk;
      rep.writer = uit->second.writer;
      rep.object_len = uit->second.object_len;
      rep.value = uit->second.bytes;
    }
  }
  if (rep.status == Status::kNotFound) ++stats_.unit_not_found;
  co_await msgs_.post(net::HostId{g.reply_to}, encode(rep));
}

sim::Process StripedStore::post_to(std::uint32_t to,
                                   std::vector<std::uint8_t> bytes) {
  co_await msgs_.post(net::HostId{to}, std::move(bytes));
}

// --- StripedClient ----------------------------------------------------------

StripedClient::StripedClient(sim::Scheduler& sched, vmmc::MsgEndpoint& msgs,
                             const ec::StripeMap& map,
                             const ec::RsCodec& codec, StripedClientConfig cfg)
    : sched_(sched), msgs_(msgs), map_(map), codec_(codec), cfg_(cfg) {
  obs::Registry& reg = obs::Registry::of(sched_);
  const std::string node = "{node=" + std::to_string(msgs_.host().v) + "}";
  put_latency_ = &reg.histogram("ec.striped_put_latency_ns" + node, "ns");
  get_latency_ = &reg.histogram("ec.striped_get_latency_ns" + node, "ns");
  reg.add_collector(this, [this, &reg, node] {
    const StripedClientStats& s = stats_;
    reg.counter("ec.striped_puts" + node, "calls").set(s.puts);
    reg.counter("ec.striped_puts_ok" + node, "calls").set(s.puts_ok);
    reg.counter("ec.striped_gets" + node, "calls").set(s.gets);
    reg.counter("ec.striped_gets_ok" + node, "calls").set(s.gets_ok);
    reg.counter("ec.degraded_reads" + node, "calls").set(s.degraded_reads);
    reg.counter("ec.striped_failed" + node, "calls").set(s.failed);
    reg.counter("ec.unit_posts" + node, "messages").set(s.unit_posts);
    reg.counter("ec.unit_timeouts" + node, "attempts").set(s.unit_timeouts);
    reg.counter("ec.dead_skips" + node, "attempts").set(s.dead_skips);
    reg.counter("ec.stale_replies" + node, "messages").set(s.stale_replies);
    reg.counter("ec.client_bad_msgs" + node, "messages").set(s.bad_msgs);
  });
}

StripedClient::~StripedClient() {
  if (auto* r = obs::Registry::find(sched_)) r->remove_collectors(this);
}

void StripedClient::start() {
  vmmc::MsgEndpoint::Tap prev = msgs_.tap();
  msgs_.set_tap([this, prev = std::move(prev)](const vmmc::Msg& m) {
    if (handle(m)) return true;
    return prev ? prev(m) : false;
  });
}

bool StripedClient::handle(const vmmc::Msg& m) {
  switch (peek_type(m.bytes)) {
    case MsgType::kUnitAck: {
      auto a = decode_unit_ack(m.bytes);
      if (!a) {
        ++stats_.bad_msgs;
        return true;
      }
      auto it = pending_.find(a->id.packed());
      if (it == pending_.end()) {
        ++stats_.stale_replies;
        return true;
      }
      auto uit = it->second.find(a->unit);
      if (uit == it->second.end() || uit->second->replied) {
        ++stats_.stale_replies;
        return true;
      }
      uit->second->replied = true;
      uit->second->status = a->status;
      uit->second->done.fire(sched_);
      return true;
    }
    case MsgType::kUnitReply: {
      auto rep = decode_unit_reply(m.bytes);
      if (!rep) {
        ++stats_.bad_msgs;
        return true;
      }
      auto it = pending_.find(rep->id.packed());
      if (it == pending_.end()) {
        ++stats_.stale_replies;
        return true;
      }
      auto uit = it->second.find(rep->unit);
      if (uit == it->second.end() || uit->second->replied) {
        ++stats_.stale_replies;
        return true;
      }
      uit->second->replied = true;
      uit->second->status = rep->status;
      uit->second->reply = std::move(*rep);
      uit->second->done.fire(sched_);
      return true;
    }
    default:
      return false;
  }
}

net::HostId StripedClient::holder_of(std::size_t group, std::size_t unit) {
  return map_.resolve(group, dead_)[unit];
}

sim::Task<StripedOutcome> StripedClient::put(RequestId id, std::uint64_t key,
                                             std::vector<std::uint8_t> value) {
  ++stats_.puts;
  StripedOutcome o;
  o.id = id;
  o.issued_at = sched_.now();

  auto units = codec_.split(value);
  codec_.encode(units);
  const auto object_len = static_cast<std::uint32_t>(value.size());
  const std::uint64_t packed = id.packed();

  sim::WaitGroup wg;
  std::vector<char> oks(codec_.n(), 0);
  for (std::size_t u = 0; u < codec_.n(); ++u) {
    UnitPut p;
    p.id = id;
    p.key = key;
    p.unit = static_cast<std::uint8_t>(u);
    p.object_len = object_len;
    p.reply_to = host().v;
    p.value = std::move(units[u]);
    wg.add();
    put_unit(packed, std::move(p), &oks[u], &wg);
  }
  co_await wg.wait(sched_);
  pending_.erase(packed);

  o.completed_at = sched_.now();
  const bool all =
      std::all_of(oks.begin(), oks.end(), [](char c) { return c != 0; });
  o.status = all ? Status::kOk : Status::kTimeout;
  if (all) {
    ++stats_.puts_ok;
    put_latency_->record(static_cast<std::uint64_t>(o.latency()));
  } else {
    ++stats_.failed;
  }
  co_return o;
}

sim::Process StripedClient::put_unit(std::uint64_t packed_id, UnitPut put,
                                     char* ok, sim::WaitGroup* wg) {
  PendingUnit pu;
  pending_[packed_id][put.unit] = &pu;
  const std::size_t group = map_.group_of(put.key);
  const auto wire = encode(put);

  sim::Duration timeout = cfg_.base_timeout;
  net::HostId target = holder_of(group, put.unit);
  for (int attempt = 0; attempt < cfg_.put_max_attempts && !pu.replied;
       ++attempt) {
    const net::HostId now = holder_of(group, put.unit);
    if (now != target) {
      // The holder died and the map re-homed the unit; chase it.
      target = now;
      ++stats_.dead_skips;
    }
    ++stats_.unit_posts;
    co_await msgs_.post(target, wire);
    if (pu.replied) break;
    auto timer = sched_.after(timeout, [this, &pu] { pu.done.fire(sched_); });
    co_await pu.done.wait(sched_);
    sched_.cancel(timer);
    pu.done.reset();
    if (pu.replied) break;
    ++stats_.unit_timeouts;
    timeout = std::min(timeout * 2, cfg_.max_timeout);
  }
  *ok = (pu.replied && pu.status == Status::kOk) ? 1 : 0;
  // The put() parent erases the whole pending_[packed_id] entry after join;
  // deregister just this worker in case siblings are still in flight.
  auto it = pending_.find(packed_id);
  if (it != pending_.end()) it->second.erase(put.unit);
  wg->done(sched_);
}

sim::Task<StripedOutcome> StripedClient::get(RequestId id, std::uint64_t key) {
  ++stats_.gets;
  StripedOutcome o;
  o.id = id;
  o.issued_at = sched_.now();

  const std::size_t group = map_.group_of(key);
  const std::size_t n = codec_.n();
  const std::size_t k = codec_.k();
  // Unit fetches run in a per-host fetch id space so replies can't collide
  // with other calls' units.
  const std::uint64_t fetch_client = 0xEC100000ull | host().v;

  for (int round = 0; round < cfg_.get_rounds; ++round) {
    std::vector<UnitReply> got(n);
    std::vector<bool> present(n, false);
    std::size_t found = 0;
    std::size_t not_found = 0;

    // Phase 1: the k data units — a clean read never touches parity.
    // Phase 2 (only if short): every remaining unit, reconstruct.
    for (int phase = 0; phase < 2 && found < k; ++phase) {
      const std::size_t lo = phase == 0 ? 0 : k;
      const std::size_t hi = phase == 0 ? k : n;
      sim::WaitGroup wg;
      std::vector<std::unique_ptr<PendingUnit>> pus;
      std::vector<std::uint64_t> fetch_ids;
      for (std::size_t u = lo; u < hi; ++u) {
        UnitGet g;
        g.id = RequestId{fetch_client, ++fetch_seq_};
        g.key = key;
        g.unit = static_cast<std::uint8_t>(u);
        g.reply_to = host().v;
        pus.push_back(std::make_unique<PendingUnit>());
        fetch_ids.push_back(g.id.packed());
        wg.add();
        fetch_unit(group, std::move(g), pus.back().get(), &wg);
      }
      co_await wg.wait(sched_);
      for (std::size_t i = 0; i < pus.size(); ++i) {
        pending_.erase(fetch_ids[i]);
        const std::size_t u = lo + i;
        if (pus[i]->replied && pus[i]->status == Status::kOk) {
          got[u] = std::move(pus[i]->reply);
          present[u] = true;
          ++found;
        } else if (pus[i]->replied && pus[i]->status == Status::kNotFound) {
          ++not_found;
        }
      }
    }

    if (found >= k) {
      std::vector<std::vector<std::uint8_t>> units(n);
      std::vector<bool> have(n, false);
      std::uint32_t object_len = 0;
      bool clean = true;
      for (std::size_t u = 0; u < n; ++u) {
        if (!present[u]) {
          if (u < k) clean = false;
          continue;
        }
        units[u] = std::move(got[u].value);
        have[u] = true;
        object_len = got[u].object_len;
      }
      if (!clean) {
        // Degraded: at least one data unit is missing; rebuild it from the
        // parity we fetched.
        if (!codec_.reconstruct(units, have)) {
          o.completed_at = sched_.now();
          o.status = Status::kTimeout;  // <k usable survivors; shouldn't happen
          ++stats_.failed;
          co_return o;
        }
        ++stats_.degraded_reads;
        o.degraded = true;
      }
      o.value = codec_.join(units, object_len);
      o.status = Status::kOk;
      o.completed_at = sched_.now();
      ++stats_.gets_ok;
      get_latency_->record(static_cast<std::uint64_t>(o.latency()));
      co_return o;
    }

    if (not_found == n) {
      // Every holder answered and none has a unit: the key was never
      // written (a committed outcome, like the primary-backup kNotFound).
      o.status = Status::kNotFound;
      o.completed_at = sched_.now();
      ++stats_.gets_ok;
      co_return o;
    }

    co_await sim::DelayFor{sched_, cfg_.base_timeout * (1u << round)};
  }

  o.completed_at = sched_.now();
  o.status = Status::kTimeout;
  ++stats_.failed;
  co_return o;
}

sim::Process StripedClient::fetch_unit(std::size_t group, UnitGet get,
                                       PendingUnit* pu, sim::WaitGroup* wg) {
  pending_[get.id.packed()][get.unit] = pu;
  const auto wire = encode(get);
  sim::Duration timeout = cfg_.base_timeout;
  for (int attempt = 0; attempt < cfg_.get_attempts && !pu->replied;
       ++attempt) {
    const net::HostId target = holder_of(group, get.unit);
    if (dead_ && dead_(target)) {
      // Map says the unit is currently homeless (no live spare, or the view
      // is mid-convergence). Don't post into a corpse; let the round's
      // backoff retry after the map settles.
      ++stats_.dead_skips;
      break;
    }
    ++stats_.unit_posts;
    co_await msgs_.post(target, wire);
    if (pu->replied) break;
    auto timer = sched_.after(timeout, [this, pu] { pu->done.fire(sched_); });
    co_await pu->done.wait(sched_);
    sched_.cancel(timer);
    pu->done.reset();
    if (pu->replied) break;
    ++stats_.unit_timeouts;
    timeout = std::min(timeout * 2, cfg_.max_timeout);
  }
  wg->done(sched_);
}

}  // namespace sanfault::kv
